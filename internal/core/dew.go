// Package core implements DEW ("Direct Explorer Wave"), the paper's
// contribution: exact single-pass simulation of every power-of-two set
// count for a fixed (associativity, block size) pair under the FIFO
// replacement policy.
//
// # Simulation tree
//
// For set counts 2^minLog .. 2^maxLog, level L of the binomial simulation
// tree holds the 2^L sets of the configuration with 2^L sets (Figure 1 of
// the paper). A block address b maps to node (L, b mod 2^L); the parent
// of node (L+1, i) is (L, i mod 2^L), and an access therefore evaluates
// at most one node per level — Property 1. When minLog > 0 the structure
// is a forest of 2^minLog trees, handled uniformly by the same indexing.
//
// # Node structure
//
// Each node is an A-way FIFO set: a tag list with one wave pointer per
// entry, the MRA (most recently accessed) tag, and the MRE (most recently
// evicted) tag with its wave pointer (Figure 4). A wave pointer stores
// the way position the same tag occupied in the node's child the last
// time the tag was processed there; "empty" (-1) means the position in
// the child is unknown.
//
// # The four properties
//
//   - P2 (MRA): if the requested tag equals a node's MRA tag, no other
//     access has touched this set since the tag's last access — and since
//     every access to a descendant set also passes through this set, no
//     descendant set was touched either. The tag is therefore still
//     resident in this node and in every descendant, the access is a hit
//     at this and all larger set counts, and — FIFO never reorders on a
//     hit — no state needs updating: the walk stops. The MRA tag is also
//     exactly the content of the direct-mapped (associativity 1)
//     configuration at this level, which is how one DEW pass simulates
//     associativity 1 alongside associativity A for free.
//   - P3 (wave): a tag's physical way position in a FIFO set can change
//     only while that same tag is being accessed (insertion or MRE
//     resurrection), and every access to the tag refreshes the parent's
//     wave pointer. Consequently a non-empty parent wave pointer w
//     decides membership with a single comparison: child.way[w] holds the
//     tag (hit at way w) or the tag is not in the child at all (miss).
//   - P4 (MRE): if the requested tag equals the node's MRE tag, the tag
//     was the last one evicted and cannot be resident — a miss with no
//     search. On the re-insert the MRE entry's saved wave pointer is
//     swapped back into the tag list (Algorithm 2 line 5), keeping the
//     wave chain intact for the descent.
//
// Only when none of the properties decide is the tag list scanned.
//
// Exactness does not depend on P2/P3/P4 being enabled — they only avoid
// work — so Options provides per-property ablation switches used by the
// ablation benchmarks.
//
// # Instrumented and fast paths
//
// The simulator exposes two equivalent evaluation paths. Access (and
// Simulate, which batches its reads but still calls Access per request)
// is the instrumented path: it maintains the full Counters set that
// Tables 3 and 4 report. AccessBatch (and SimulateBatch) is the
// counter-free fast path: the same node walk with the per-access counter
// increments compiled out and the hot per-level slices (tags, wave,
// fill, mra) hoisted into local slice headers, counting only
// Counters.Accesses. The two paths are bit-identical in Results —
// batch_test.go and FuzzBatchEquivalence enforce it — and sweep.RunCell
// cross-checks them on every cell. Setting Options.Instrument (or any
// ablation switch, whose whole point is moving counters) routes the
// batched entry points back through Access.
//
// # Sharded parallel passes
//
// A third, parallel execution form of the same pass lives in Sharded:
// the levels at and below a shard level S decompose into 2^S trees that
// never share a node (the node index taken mod 2^S equals the block
// address mod 2^S at every level ≥ S), so each tree can replay its own
// substream of a trace.ShardStream on its own goroutine while a
// shallow pass covers the levels above S; the stitched per-level miss
// tables are bit-identical to the monolithic pass — shard_test.go and
// FuzzShardedEquivalence enforce it, and sweep cells running with
// Shards cross-check it against the instrumented pass at runtime.
//
// # LRU cost
//
// Under cache.LRU FIFO's round-robin cursor does not apply, and keeping
// ways position-stable (which the wave pointers require) rules out the
// sorted recency list a dedicated LRU simulator would use. Earlier
// versions paid an O(A) victim scan over per-way recency stamps on
// every warm miss. (Tracking the min-stamp way incrementally cannot
// remove that scan: every warm miss inserts at the min way, which
// forces an O(A) recompute of the minimum — the scan just moves.) The
// simulator instead threads an exact recency order through the
// position-stable ways as a per-node doubly-linked list (older/newer
// way indices plus the node's MRU/LRU endpoints): a hit unlinks and
// relinks one way in O(1), and a warm miss reads the victim straight
// from the node's LRU endpoint in O(1). Ways still never move, so the
// wave pointers stay sound, and the list order equals the stamp order
// (stamps were unique), so victim choice — and every result — is
// bit-identical to the scanning implementation. The remaining LRU
// overhead versus FIFO is the constant link maintenance per access,
// not an O(A) term.
package core

import (
	"fmt"
	"math/bits"

	"dew/internal/cache"
	"dew/internal/trace"
)

// Options configures one DEW pass. A pass covers set counts 2^MinLogSets
// through 2^MaxLogSets for one associativity and one block size, i.e. the
// configurations {(2^L, Assoc, BlockSize)} plus — for free — the
// direct-mapped configurations {(2^L, 1, BlockSize)}.
type Options struct {
	// MinLogSets and MaxLogSets bound the simulated set counts
	// (inclusive, as log2). The paper uses 0..14.
	MinLogSets, MaxLogSets int
	// Assoc is the tag-list associativity A (power of two, 1..64).
	Assoc int
	// BlockSize is the cache block size in bytes (power of two).
	BlockSize int

	// Policy selects the replacement policy. DEW is designed and
	// optimized for cache.FIFO (the default). cache.LRU is supported —
	// the paper's Section 2.1 notes DEW "can simulate caches with the
	// LRU replacement policy, but will typically be slower than
	// Janapsatya's method" — by keeping tags in position-stable ways
	// (recency lives in per-node linked recency order, so hits never
	// move entries and the wave pointers stay sound) with O(1) victim
	// selection (see the package comment). Other policies are rejected.
	Policy cache.Policy

	// DisableMRA, DisableWave and DisableMRE switch off properties 2, 3
	// and 4 respectively for ablation studies. Results are identical
	// either way; only the work counters change.
	DisableMRA  bool
	DisableWave bool
	DisableMRE  bool

	// Instrument forces the batched and stream entry points
	// (AccessBatch, SimulateBatch, AccessRuns, SimulateStream) onto the
	// instrumented path, maintaining the full Counters set exactly as
	// Access does (the stream entry points fold run weights into the
	// level-0 MRA counters arithmetically; see AccessRuns). When false
	// (the default) and no property is disabled, they take the
	// counter-free fast paths: identical Results, but only
	// Counters.Accesses is maintained. Access and Simulate are always
	// instrumented — they are the Table 3/4 measurement path.
	Instrument bool
}

// instrumented reports whether the batched entry points must route
// through the fully counted per-access path: explicitly requested, or
// required because an ablation switch changes which counters move.
func (o Options) instrumented() bool {
	return o.Instrument || o.DisableMRA || o.DisableWave || o.DisableMRE
}

// Validate reports whether the options describe a simulatable pass.
func (o Options) Validate() error {
	if o.MinLogSets < 0 || o.MaxLogSets < o.MinLogSets {
		return fmt.Errorf("core: invalid set-count range [2^%d, 2^%d]", o.MinLogSets, o.MaxLogSets)
	}
	if o.MaxLogSets > 22 {
		return fmt.Errorf("core: max log2 set count %d exceeds supported 22", o.MaxLogSets)
	}
	if o.Assoc < 1 || o.Assoc > 64 || o.Assoc&(o.Assoc-1) != 0 {
		return fmt.Errorf("core: associativity must be a power of two in [1, 64], got %d", o.Assoc)
	}
	if o.BlockSize < 1 || o.BlockSize&(o.BlockSize-1) != 0 {
		return fmt.Errorf("core: block size must be a positive power of two, got %d", o.BlockSize)
	}
	if o.Policy != cache.FIFO && o.Policy != cache.LRU {
		return fmt.Errorf("core: unsupported replacement policy %v (FIFO and LRU only)", o.Policy)
	}
	return nil
}

// Levels returns the number of tree levels the pass simulates.
func (o Options) Levels() int { return o.MaxLogSets - o.MinLogSets + 1 }

// nodeState packs one node's (one cache set's) metadata into a single
// 24-byte record: the MRA tag the direct-mapped check reads on every
// visit, the MRE tag, and the small bookkeeping fields. Keeping them in
// one record instead of seven parallel arrays means the per-level work
// of the hot walk — which usually ends at the MRA comparison — touches
// one cache line, not seven.
type nodeState struct {
	// Field order is deliberate: the stream fast path touches only mra,
	// head and fill (bytes 0..9), so with the 24-byte record stride
	// those bytes stay on one cache line for 7 of every 8 records (only
	// the offset-56-mod-64 record straddles a boundary); the MRE-domain
	// fields the stream path never reads sit in the back half. The two
	// LRU recency-list endpoints occupy what was padding, so LRU passes
	// add no record growth.
	mra     uint64 // most recently accessed tag (= the DM configuration's content)
	head    int8   // FIFO round-robin victim cursor
	fill    int8   // number of valid ways
	mreOK   bool   // mre holds a real tag
	mreWave int8   // wave pointer saved with the MRE tag
	mruWay  int8   // most recently used way (LRU passes; valid when fill > 0)
	lruWay  int8   // least recently used way = O(1) victim (LRU passes; valid when fill > 0)
	mre     uint64 // most recently evicted tag
}

// mraValid reports whether the node's MRA entry holds a real tag. Every
// walk through a node hits or inserts (fill > 0) and sets mra, and a
// Property 2 exit at the node requires an earlier walk through it, so
// "ever touched" — fill > 0 — is exactly "mra is real"; the flag needs
// no storage or per-level store of its own.
func (n *nodeState) mraValid() bool { return n.fill > 0 }

// level holds the flattened node arrays for one tree level (one set
// count). Node i of a level with 2^log sets owns entries
// [i*assoc, (i+1)*assoc) of the per-way slices and record i of node.
type level struct {
	mask uint64 // 2^log - 1

	// Per-way state.
	tags []uint64 // stored block addresses
	wave []int8   // way position of the same tag in the child; -1 empty
	// older and newer (LRU passes only) thread the node's exact recency
	// order through its position-stable ways as a doubly-linked list:
	// older[w]/newer[w] are way indices one step toward the LRU/MRU
	// endpoint (-1 at the ends). Ways never move on hits, so wave
	// pointers remain sound under LRU; the victim is the node's lruWay
	// endpoint, read in O(1).
	older []int8
	newer []int8

	// Per-node state.
	node []nodeState
}

// Simulator is one DEW pass in progress. Create with New, feed with
// Access or Simulate, then read Results and Counters.
//
// All per-way and per-node state lives in level-major arenas (nodes,
// tags, wave, and — for LRU passes — the older/newer recency links);
// each level's slices are views into them.
// The instrumented path walks the per-level views, the fast path walks
// the arenas directly with incrementally computed masks and offsets —
// same memory, same results.
type Simulator struct {
	opt     Options
	offBits uint
	assoc   int
	isLRU   bool
	levels  []level

	// Arenas backing every level's slices, concatenated in level order.
	nodes []nodeState
	tags  []uint64
	wave  []int8
	older []int8 // LRU passes only
	newer []int8 // LRU passes only

	// lvlMask, lvlNodeOff and lvlWayOff are the per-level node masks and
	// arena offsets, precomputed once. The per-access fast path computes
	// them incrementally in registers instead (the serial chain is free
	// there, hidden behind the node-record load); the columnar stream
	// walk, which keeps many walks in flight per call, reads these tiny
	// L1-resident tables to break the cross-level dependency chain.
	lvlMask    []uint64
	lvlNodeOff []int32
	lvlWayOff  []int32

	// missDM and missA hold each level's miss counts for the
	// associativity-1 and associativity-A configurations. They live in
	// two dense arrays — the hottest writes of the walk — so every level
	// updates the same couple of cache lines.
	missDM []uint64
	missA  []uint64

	// exitHist is the fast path's pending exit-depth histogram:
	// exitHist[d] counts accesses whose walk ended with the MRA hit at
	// level d (or d == Levels() for walks that ran through every level).
	// A walk increments missDM at exactly the levels before its exit, so
	// missDM[l] ≡ Σ_{d>l} exitHist[d]; the fast path pays one histogram
	// increment per access instead of one missDM increment per level,
	// and AccessBatch folds the suffix sums back into missDM after each
	// batch (so missDM is current whenever AccessBatch is not running).
	exitHist []uint64

	// lastBlk memoizes the most recently simulated block address for the
	// fast path: a repeated block is by construction a level-0 MRA hit,
	// which mutates nothing, so the walk can be skipped outright.
	lastBlk uint64
	lastOK  bool

	// pfSink absorbs the stream walk's prefetch touches so the compiler
	// cannot discard them; never read.
	pfSink uint64

	counters Counters
}

// New builds a Simulator for the given options.
func New(opt Options) (*Simulator, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		opt:     opt,
		offBits: uint(bits.TrailingZeros(uint(opt.BlockSize))),
		assoc:   opt.Assoc,
		isLRU:   opt.Policy == cache.LRU,
		levels:  make([]level, opt.Levels()),
	}
	totalNodes := 0
	for i := range s.levels {
		totalNodes += 1 << (opt.MinLogSets + i)
	}
	totalWays := totalNodes * opt.Assoc
	s.nodes = make([]nodeState, totalNodes)
	s.tags = make([]uint64, totalWays)
	// One extra scratch entry at the end of the wave arena: the fast
	// path's level-0 iteration "refreshes its parent's wave pointer"
	// into it unconditionally, which removes a has-parent branch from
	// every level of the walk. The slot is never read.
	s.wave = make([]int8, totalWays+1)
	s.missDM = make([]uint64, opt.Levels())
	s.missA = make([]uint64, opt.Levels())
	s.exitHist = make([]uint64, opt.Levels()+1)
	if s.isLRU {
		s.older = make([]int8, totalWays)
		s.newer = make([]int8, totalWays)
	}
	s.lvlMask = make([]uint64, opt.Levels())
	s.lvlNodeOff = make([]int32, opt.Levels())
	s.lvlWayOff = make([]int32, opt.Levels())
	nodeOff, wayOff := 0, 0
	for i := range s.levels {
		nodes := 1 << (opt.MinLogSets + i)
		ways := nodes * opt.Assoc
		lv := &s.levels[i]
		lv.mask = uint64(nodes - 1)
		s.lvlMask[i] = lv.mask
		s.lvlNodeOff[i] = int32(nodeOff)
		s.lvlWayOff[i] = int32(wayOff)
		lv.node = s.nodes[nodeOff : nodeOff+nodes : nodeOff+nodes]
		lv.tags = s.tags[wayOff : wayOff+ways : wayOff+ways]
		lv.wave = s.wave[wayOff : wayOff+ways : wayOff+ways]
		if s.isLRU {
			lv.older = s.older[wayOff : wayOff+ways : wayOff+ways]
			lv.newer = s.newer[wayOff : wayOff+ways : wayOff+ways]
		}
		nodeOff += nodes
		wayOff += ways
	}
	return s, nil
}

// Reset returns the simulator to its freshly constructed state while
// keeping every arena allocation, so repeated passes — benchmark
// iterations, sweep cells, per-shard tree replays — run with zero
// steady-state allocations. Only the node records and the result/counter
// arrays are cleared: the per-way arenas (tags, wave, recency links) can
// stay stale because every read of a way is gated on the owning node's
// fill count, which Reset zeroes — a stale entry is unreachable until an
// insertion rewrites it, exactly as an uninitialized entry is after New.
func (s *Simulator) Reset() {
	clear(s.nodes)
	clear(s.missDM)
	clear(s.missA)
	clear(s.exitHist)
	s.counters = Counters{}
	s.lastBlk, s.lastOK = 0, false
}

// lruTouch moves the linked way n to the MRU end of the node's recency
// list in O(1). older and newer may be either a level's views or the
// arenas, with base the node's way offset in them. Shared by the
// instrumented and fast paths so both make identical updates.
func lruTouch(nd *nodeState, older, newer []int8, base, n int) {
	mru := int(nd.mruWay)
	if mru == n {
		return
	}
	o, nw := older[base+n], newer[base+n]
	if o >= 0 {
		newer[base+int(o)] = nw
	} else {
		nd.lruWay = nw // n was the LRU endpoint
	}
	if nw >= 0 {
		older[base+int(nw)] = o
	}
	older[base+n] = int8(mru)
	newer[base+mru] = int8(n)
	newer[base+n] = -1
	nd.mruWay = int8(n)
}

// lruInsert links the newly filled way n (always the node's previous
// fill count) at the MRU end of the recency list.
func lruInsert(nd *nodeState, older, newer []int8, base, n int) {
	if n == 0 {
		nd.lruWay = 0
		older[base] = -1
	} else {
		mru := int(nd.mruWay)
		older[base+n] = int8(mru)
		newer[base+mru] = int8(n)
	}
	newer[base+n] = -1
	nd.mruWay = int8(n)
}

// MustNew is New but panics on error; for tests and examples.
func MustNew(opt Options) *Simulator {
	s, err := New(opt)
	if err != nil {
		panic(err)
	}
	return s
}

// Options returns the pass configuration.
func (s *Simulator) Options() Options { return s.opt }

// Access simulates one memory request against every configuration of the
// pass. The request kind does not influence FIFO state; it is accepted so
// the simulator is a drop-in trace consumer.
func (s *Simulator) Access(a trace.Access) {
	blk := a.Addr >> s.offBits
	s.counters.Accesses++
	// Keep the fast path's repeated-block memo sound when the two entry
	// points are mixed on one Simulator: after this call, blk is the
	// most recently simulated block, which is exactly the memo's
	// invariant.
	s.lastBlk, s.lastOK = blk, true

	parentWave := int8(-1) // wave pointer read from the parent's matching entry
	parentIdx := -1        // index of the parent's matching entry in its wave slice
	var parentLv *level    // level owning parentIdx

	for li := range s.levels {
		lv := &s.levels[li]
		node := int(blk & lv.mask)
		nd := &lv.node[node]
		base := node * s.assoc
		// One evaluation for the direct-mapped configuration plus one
		// for the A-way configuration (the paper's Table 4 convention).
		s.counters.NodeEvaluations += 2

		// Direct-mapped check, doubling as Property 2.
		s.counters.TagComparisons++
		mraHit := nd.mra == blk && nd.mraValid()
		if mraHit && !s.opt.DisableMRA {
			// P2: hit in this and every deeper configuration, for both
			// associativity 1 and A; FIFO state is unaffected by hits.
			s.counters.MRACount++
			return
		}
		if !mraHit {
			s.missDM[li]++
		}

		// Decide associativity-A membership.
		hitWay := -1
		decided := false
		resurrect := false
		mreChecked := false
		if !s.opt.DisableWave && parentIdx >= 0 && parentWave >= 0 {
			// P3: one probe decides hit or miss.
			w := int(parentWave)
			s.counters.TagComparisons++
			s.counters.WaveCount++
			if w < int(nd.fill) && lv.tags[base+w] == blk {
				hitWay = w
			}
			decided = true
		}
		if !decided && !s.opt.DisableMRE && nd.mreOK {
			// P4: the most recently evicted tag cannot be resident.
			s.counters.TagComparisons++
			mreChecked = true
			if nd.mre == blk {
				s.counters.MRECount++
				decided = true
				resurrect = true
			}
		}
		if !decided {
			// Full tag-list scan. (With DisableMRA this also covers the
			// MRA-matched case: the tag is resident by the P2 invariant,
			// but its way is unknown without a search.)
			s.counters.Searches++
			for w := 0; w < int(nd.fill); w++ {
				s.counters.TagComparisons++
				if lv.tags[base+w] == blk {
					hitWay = w
					break
				}
			}
		}

		var n int
		coldFill := false
		if hitWay >= 0 {
			// Algorithm 1: Handle_hit.
			n = hitWay
		} else {
			// Algorithm 2: Handle_miss.
			s.missA[li]++
			if int(nd.fill) < s.assoc {
				// Cold fill: no eviction, wave pointer unknown.
				n = int(nd.fill)
				coldFill = true
				nd.fill++
				lv.tags[base+n] = blk
				lv.wave[base+n] = -1
			} else {
				if s.isLRU {
					// LRU victim: the recency list's LRU endpoint, O(1).
					n = int(nd.lruWay)
				} else {
					n = int(nd.head)
					nd.head = int8((n + 1) & (s.assoc - 1))
				}
				if !s.opt.DisableMRE && !mreChecked && nd.mreOK {
					// Algorithm 2 line 4 when the miss was decided by P3
					// or a scan: the MRE may still be the requested tag.
					s.counters.TagComparisons++
					resurrect = nd.mre == blk
				}
				victimTag := lv.tags[base+n]
				victimWave := lv.wave[base+n]
				if resurrect {
					// Exchange the victim with the MRE entry, restoring
					// the requested tag's saved wave pointer.
					lv.tags[base+n] = blk
					lv.wave[base+n] = nd.mreWave
					nd.mre = victimTag
					nd.mreWave = victimWave
				} else {
					lv.tags[base+n] = blk
					lv.wave[base+n] = -1
					if !s.opt.DisableMRE {
						nd.mre = victimTag
						nd.mreWave = victimWave
						nd.mreOK = true
					}
				}
			}
		}

		if s.isLRU {
			// Refresh LRU recency; the way's position never changes, so
			// wave pointers into and out of this entry stay valid.
			if coldFill {
				lruInsert(nd, lv.older, lv.newer, base, n)
			} else {
				lruTouch(nd, lv.older, lv.newer, base, n)
			}
		}

		nd.mra = blk
		if parentIdx >= 0 {
			parentLv.wave[parentIdx] = int8(n)
		}
		parentWave = lv.wave[base+n]
		parentIdx = base + n
		parentLv = lv
	}
}

// Simulate drains the reader through the instrumented per-access path.
// Reads are batched (trace.BatchReader) so the reader is consulted once
// per chunk, but every access still flows through Access and maintains
// the full counter set. For the counter-free fast path use SimulateBatch.
func (s *Simulator) Simulate(r trace.Reader) error {
	return trace.Drain(r, func(batch []trace.Access) {
		for _, a := range batch {
			s.Access(a)
		}
	})
}

// Result pairs one configuration with its exact simulation outcome.
type Result struct {
	Config cache.Config
	cache.Stats
}

// Results returns the exact per-configuration statistics of the pass: for
// every level, the associativity-A configuration and (when Assoc > 1) the
// direct-mapped configuration it simulates for free, in ascending set
// count with the direct-mapped entry first.
func (s *Simulator) Results() []Result {
	return buildResults(s.opt, s.counters.Accesses, s.missDM, s.missA)
}

// buildResults assembles the per-configuration Result layout shared by
// the monolithic Simulator and the stitched sharded pass: per level, the
// direct-mapped configuration (when Assoc > 1) followed by the A-way
// configuration, in ascending set count.
func buildResults(opt Options, accesses uint64, missDM, missA []uint64) []Result {
	var out []Result
	for i := 0; i < opt.Levels(); i++ {
		sets := 1 << (opt.MinLogSets + i)
		if opt.Assoc > 1 {
			out = append(out, Result{
				Config: cache.Config{Sets: sets, Assoc: 1, BlockSize: opt.BlockSize},
				Stats:  cache.Stats{Accesses: accesses, Misses: missDM[i]},
			})
		}
		out = append(out, Result{
			Config: cache.Config{Sets: sets, Assoc: opt.Assoc, BlockSize: opt.BlockSize},
			Stats:  cache.Stats{Accesses: accesses, Misses: missA[i]},
		})
	}
	return out
}

// MissesFor returns the exact miss count for one of the pass's
// configurations (assoc must be 1 or the pass associativity, sets a
// simulated level).
func (s *Simulator) MissesFor(sets, assoc int) (uint64, error) {
	return missesFor(s.opt, s.missDM, s.missA, sets, assoc)
}

// missesFor resolves one configuration's miss count from a pass's
// per-level miss tables; shared by the monolithic and sharded passes.
func missesFor(opt Options, missDM, missA []uint64, sets, assoc int) (uint64, error) {
	if assoc != 1 && assoc != opt.Assoc {
		return 0, fmt.Errorf("core: pass simulates associativity 1 and %d, not %d", opt.Assoc, assoc)
	}
	if sets < 1 || sets&(sets-1) != 0 {
		return 0, fmt.Errorf("core: set count %d is not a power of two", sets)
	}
	log := bits.TrailingZeros(uint(sets))
	if log < opt.MinLogSets || log > opt.MaxLogSets {
		return 0, fmt.Errorf("core: set count %d outside simulated range [2^%d, 2^%d]",
			sets, opt.MinLogSets, opt.MaxLogSets)
	}
	li := log - opt.MinLogSets
	if assoc == 1 {
		return missDM[li], nil
	}
	return missA[li], nil
}

// Run builds a Simulator, drains the reader and returns it.
func Run(opt Options, r trace.Reader) (*Simulator, error) {
	s, err := New(opt)
	if err != nil {
		return nil, err
	}
	if err := s.Simulate(r); err != nil {
		return nil, err
	}
	return s, nil
}
