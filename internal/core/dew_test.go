package core

import (
	"math/rand"
	"testing"

	"dew/internal/cache"
	"dew/internal/refsim"
	"dew/internal/trace"
)

func randomTrace(n int, addrSpace int64, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := make(trace.Trace, n)
	for i := range t {
		t[i] = trace.Access{Addr: uint64(rng.Int63n(addrSpace)), Kind: trace.Kind(rng.Intn(3))}
	}
	return t
}

// streakyTrace mixes random accesses with repeats of the previous address
// and small strides — the locality mix that exercises MRA streaks, wave
// reuse and MRE resurrection together.
func streakyTrace(n int, addrSpace int64, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := make(trace.Trace, n)
	var prev uint64
	for i := range t {
		switch rng.Intn(4) {
		case 0: // repeat
			t[i] = trace.Access{Addr: prev}
		case 1: // small stride
			t[i] = trace.Access{Addr: prev + uint64(rng.Intn(8))}
		default: // random
			t[i] = trace.Access{Addr: uint64(rng.Int63n(addrSpace))}
		}
		prev = t[i].Addr
	}
	return t
}

// checkExact verifies DEW's central claim: for every configuration the
// pass covers, miss counts equal the reference simulator's exactly.
func checkExact(t *testing.T, opt Options, tr trace.Trace) {
	t.Helper()
	s := MustNew(opt)
	if err := s.Simulate(tr.NewSliceReader()); err != nil {
		t.Fatal(err)
	}
	for _, res := range s.Results() {
		want, err := refsim.RunTrace(res.Config, cache.FIFO, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses != want.Misses {
			t.Errorf("opts %+v, config %v: DEW misses = %d, refsim misses = %d",
				opt, res.Config, res.Misses, want.Misses)
		}
		if res.Accesses != want.Accesses {
			t.Errorf("config %v: accesses %d vs %d", res.Config, res.Accesses, want.Accesses)
		}
	}
}

func TestExactnessRandomTraces(t *testing.T) {
	for _, assoc := range []int{1, 2, 4, 8} {
		for _, block := range []int{1, 4, 32} {
			opt := Options{MinLogSets: 0, MaxLogSets: 6, Assoc: assoc, BlockSize: block}
			for seed := int64(0); seed < 3; seed++ {
				checkExact(t, opt, randomTrace(4000, 1<<14, seed))
			}
		}
	}
}

func TestExactnessStreakyTraces(t *testing.T) {
	for _, assoc := range []int{1, 2, 4, 16} {
		opt := Options{MinLogSets: 0, MaxLogSets: 7, Assoc: assoc, BlockSize: 4}
		for seed := int64(10); seed < 14; seed++ {
			checkExact(t, opt, streakyTrace(6000, 1<<12, seed))
		}
	}
}

func TestExactnessTinyAddressSpace(t *testing.T) {
	// A tiny address space maximizes evictions, MRE resurrections and
	// wave-pointer staleness.
	for _, assoc := range []int{2, 4} {
		opt := Options{MinLogSets: 0, MaxLogSets: 4, Assoc: assoc, BlockSize: 1}
		for seed := int64(20); seed < 26; seed++ {
			checkExact(t, opt, randomTrace(8000, 48, seed))
		}
	}
}

func TestExactnessMinLogAboveZero(t *testing.T) {
	// A forest (minimum set count > 1): top level has several roots.
	opt := Options{MinLogSets: 3, MaxLogSets: 8, Assoc: 4, BlockSize: 8}
	checkExact(t, opt, streakyTrace(6000, 1<<13, 31))
}

func TestExactnessSingleLevel(t *testing.T) {
	opt := Options{MinLogSets: 5, MaxLogSets: 5, Assoc: 4, BlockSize: 4}
	checkExact(t, opt, randomTrace(5000, 1<<12, 40))
}

func TestExactnessWorkloadTraces(t *testing.T) {
	// Hand-built locality patterns resembling the app models (kept
	// dependency-free: core must not import workload).
	var tr trace.Trace
	rng := rand.New(rand.NewSource(50))
	pc := uint64(0x400000)
	for i := 0; i < 8000; i++ {
		// Instruction stream with loop-back branches.
		tr = append(tr, trace.Access{Addr: pc, Kind: trace.IFetch})
		pc += 4
		if rng.Intn(24) == 0 {
			pc -= uint64(4 * rng.Intn(32))
		}
		// Interleaved data stream: strided array plus hot table.
		if i%3 == 0 {
			tr = append(tr, trace.Access{Addr: 0x1000000 + uint64(i%4096)*4, Kind: trace.DataRead})
		}
		if i%7 == 0 {
			tr = append(tr, trace.Access{Addr: 0x2000000 + uint64(rng.Intn(64))*4, Kind: trace.DataWrite})
		}
	}
	for _, assoc := range []int{2, 8} {
		checkExact(t, Options{MaxLogSets: 9, Assoc: assoc, BlockSize: 16}, tr)
	}
}

// Ablations must not change results — only work counts.
func TestAblationEquivalence(t *testing.T) {
	tr := streakyTrace(10000, 1<<12, 60)
	base := MustNew(Options{MaxLogSets: 8, Assoc: 4, BlockSize: 4})
	if err := base.Simulate(tr.NewSliceReader()); err != nil {
		t.Fatal(err)
	}
	baseRes := base.Results()
	variants := []Options{
		{MaxLogSets: 8, Assoc: 4, BlockSize: 4, DisableMRA: true},
		{MaxLogSets: 8, Assoc: 4, BlockSize: 4, DisableWave: true},
		{MaxLogSets: 8, Assoc: 4, BlockSize: 4, DisableMRE: true},
		{MaxLogSets: 8, Assoc: 4, BlockSize: 4, DisableMRA: true, DisableWave: true, DisableMRE: true},
	}
	for _, opt := range variants {
		v := MustNew(opt)
		if err := v.Simulate(tr.NewSliceReader()); err != nil {
			t.Fatal(err)
		}
		res := v.Results()
		if len(res) != len(baseRes) {
			t.Fatalf("%+v: result count %d vs %d", opt, len(res), len(baseRes))
		}
		for i := range res {
			if res[i] != baseRes[i] {
				t.Errorf("%+v: result %d = %+v, want %+v", opt, i, res[i], baseRes[i])
			}
		}
	}
}

// With every property disabled, DEW degenerates to the worst case: node
// evaluations equal UnoptimizedEvaluations and every decision is a scan.
func TestFullyAblatedMatchesWorstCase(t *testing.T) {
	tr := randomTrace(3000, 1<<10, 70)
	s := MustNew(Options{MaxLogSets: 5, Assoc: 4, BlockSize: 4,
		DisableMRA: true, DisableWave: true, DisableMRE: true})
	if err := s.Simulate(tr.NewSliceReader()); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.NodeEvaluations != s.UnoptimizedEvaluations() {
		t.Errorf("ablated evaluations %d != unoptimized %d", c.NodeEvaluations, s.UnoptimizedEvaluations())
	}
	if c.MRACount != 0 || c.WaveCount != 0 || c.MRECount != 0 {
		t.Errorf("ablated run recorded property counts: %+v", c)
	}
	wantSearches := uint64(6) * c.Accesses // one scan per level per access
	if c.Searches != wantSearches {
		t.Errorf("ablated searches %d, want %d", c.Searches, wantSearches)
	}
}

func TestP2MRAStreakCutoff(t *testing.T) {
	// Repeating one address: after the first access, every one is a
	// P2 cut-off at the top level with exactly one comparison.
	s := MustNew(Options{MaxLogSets: 6, Assoc: 4, BlockSize: 4})
	for i := 0; i < 100; i++ {
		s.Access(trace.Access{Addr: 0x1234})
	}
	c := s.Counters()
	if c.MRACount != 99 {
		t.Errorf("MRACount = %d, want 99", c.MRACount)
	}
	// First access: 7 levels of (MRA check + cold insert); subsequent
	// accesses: 1 comparison each.
	if c.NodeEvaluations != 7*2+99*2 {
		t.Errorf("NodeEvaluations = %d, want %d", c.NodeEvaluations, 7*2+99*2)
	}
	for _, res := range s.Results() {
		if res.Misses != 1 {
			t.Errorf("%v: misses = %d, want 1 (compulsory only)", res.Config, res.Misses)
		}
	}
}

func TestP3WavePointerAvoidsSearch(t *testing.T) {
	// Alternate between blocks 0 and 16: they alias to the same node at
	// every level with <= 16 sets, so the MRA alternates (no P2 cut-off)
	// while both blocks stay resident. After warm-up, the top level must
	// decide by scan (it has no parent) and every deeper level by a wave
	// probe — one scan and four wave decisions per access.
	s := MustNew(Options{MaxLogSets: 4, Assoc: 4, BlockSize: 1})
	warm := 8
	for i := 0; i < warm; i++ {
		s.Access(trace.Access{Addr: uint64(i % 2 * 16)})
	}
	before := s.Counters()
	for i := 0; i < 100; i++ {
		s.Access(trace.Access{Addr: uint64(i % 2 * 16)})
	}
	after := s.Counters()
	if got := after.Searches - before.Searches; got != 100 {
		t.Errorf("steady state performed %d scans, want 100 (top level only)", got)
	}
	if got := after.WaveCount - before.WaveCount; got != 400 {
		t.Errorf("steady state performed %d wave decisions, want 400", got)
	}
	if after.MRACount != before.MRACount {
		t.Error("unexpected P2 cut-offs in an alternating stream")
	}
}

func TestP4MREDetectsMissWithoutSearch(t *testing.T) {
	// S=1 (top level only), A=2, blocks 1,2,3 then re-access the evicted
	// block: at the single-level pass, the MRE entry must catch it.
	s := MustNew(Options{MinLogSets: 0, MaxLogSets: 0, Assoc: 2, BlockSize: 1})
	for _, a := range []uint64{1, 2, 3} { // 3 evicts 1; MRE=1
		s.Access(trace.Access{Addr: a})
	}
	before := s.Counters()
	s.Access(trace.Access{Addr: 1}) // MRE hit -> miss without search
	after := s.Counters()
	if after.MRECount != before.MRECount+1 {
		t.Errorf("MRECount did not increase: %d -> %d", before.MRECount, after.MRECount)
	}
	if after.Searches != before.Searches {
		t.Error("MRE-decided miss still scanned the tag list")
	}
	if got, _ := s.MissesFor(1, 2); got != 4 {
		t.Errorf("misses = %d, want 4", got)
	}
}

func TestMRRResurrectionPreservesExactness(t *testing.T) {
	// Ping-pong eviction pattern (thrashing a 2-way set with 3 blocks)
	// drives constant MRE swaps; exactness must hold at every level.
	var tr trace.Trace
	for i := 0; i < 500; i++ {
		tr = append(tr, trace.Access{Addr: uint64(i % 3 * 64)}) // same set, 3 tags
	}
	checkExact(t, Options{MaxLogSets: 3, Assoc: 2, BlockSize: 1}, tr)
}

func TestResultsShape(t *testing.T) {
	s := MustNew(Options{MinLogSets: 2, MaxLogSets: 5, Assoc: 4, BlockSize: 16})
	s.Access(trace.Access{Addr: 0})
	res := s.Results()
	if len(res) != 8 { // 4 levels × (assoc 1 + assoc 4)
		t.Fatalf("len(Results) = %d, want 8", len(res))
	}
	wantSets := []int{4, 4, 8, 8, 16, 16, 32, 32}
	wantAssoc := []int{1, 4, 1, 4, 1, 4, 1, 4}
	for i, r := range res {
		if r.Config.Sets != wantSets[i] || r.Config.Assoc != wantAssoc[i] {
			t.Errorf("result %d config = %v", i, r.Config)
		}
		if r.Config.BlockSize != 16 {
			t.Errorf("result %d block size = %d", i, r.Config.BlockSize)
		}
	}
}

func TestResultsAssocOneDeduplicated(t *testing.T) {
	s := MustNew(Options{MaxLogSets: 3, Assoc: 1, BlockSize: 4})
	s.Access(trace.Access{Addr: 0})
	res := s.Results()
	if len(res) != 4 {
		t.Fatalf("assoc-1 pass should emit one result per level, got %d", len(res))
	}
	for _, r := range res {
		if r.Config.Assoc != 1 {
			t.Errorf("unexpected config %v", r.Config)
		}
	}
}

// For an associativity-1 pass, the tag-list path and the MRA path model
// the same cache: their miss counts must agree.
func TestAssocOneDMEqualsTagList(t *testing.T) {
	tr := randomTrace(5000, 1<<10, 80)
	s := MustNew(Options{MaxLogSets: 6, Assoc: 1, BlockSize: 4})
	if err := s.Simulate(tr.NewSliceReader()); err != nil {
		t.Fatal(err)
	}
	for li := range s.levels {
		if s.missDM[li] != s.missA[li] {
			t.Errorf("level %d: direct-mapped misses %d != tag-list misses %d", li, s.missDM[li], s.missA[li])
		}
	}
}

func TestMissesFor(t *testing.T) {
	tr := randomTrace(2000, 1<<10, 90)
	s := MustNew(Options{MinLogSets: 1, MaxLogSets: 4, Assoc: 4, BlockSize: 4})
	if err := s.Simulate(tr.NewSliceReader()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MissesFor(8, 2); err == nil {
		t.Error("MissesFor with unsimulated associativity should fail")
	}
	if _, err := s.MissesFor(3, 4); err == nil {
		t.Error("MissesFor with non-power-of-two sets should fail")
	}
	if _, err := s.MissesFor(1, 4); err == nil {
		t.Error("MissesFor below the simulated range should fail")
	}
	if _, err := s.MissesFor(32, 4); err == nil {
		t.Error("MissesFor above the simulated range should fail")
	}
	got, err := s.MissesFor(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refsim.RunTrace(mustCfg(8, 4, 4), cache.FIFO, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != want.Misses {
		t.Errorf("MissesFor(8,4) = %d, want %d", got, want.Misses)
	}
	if gotDM, _ := s.MissesFor(4, 1); gotDM == 0 {
		t.Error("direct-mapped misses should be nonzero for a random trace")
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{MinLogSets: -1, MaxLogSets: 3, Assoc: 1, BlockSize: 1},
		{MinLogSets: 4, MaxLogSets: 3, Assoc: 1, BlockSize: 1},
		{MaxLogSets: 23, Assoc: 1, BlockSize: 1},
		{MaxLogSets: 3, Assoc: 0, BlockSize: 1},
		{MaxLogSets: 3, Assoc: 3, BlockSize: 1},
		{MaxLogSets: 3, Assoc: 128, BlockSize: 1},
		{MaxLogSets: 3, Assoc: 1, BlockSize: 0},
		{MaxLogSets: 3, Assoc: 1, BlockSize: 3},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
		if _, err := New(o); err == nil {
			t.Errorf("case %d: New accepted %+v", i, o)
		}
	}
	good := Options{MaxLogSets: 14, Assoc: 16, BlockSize: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("paper-scale options rejected: %v", err)
	}
	if good.Levels() != 15 {
		t.Errorf("Levels = %d, want 15", good.Levels())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic")
		}
	}()
	MustNew(Options{Assoc: 3, BlockSize: 1})
}

func TestSimulateReaderError(t *testing.T) {
	boom := trace.FuncReader(func() (trace.Access, error) { return trace.Access{}, errTest })
	s := MustNew(Options{MaxLogSets: 2, Assoc: 2, BlockSize: 4})
	if err := s.Simulate(boom); err != errTest {
		t.Fatalf("err = %v", err)
	}
	if _, err := Run(Options{MaxLogSets: 2, Assoc: 2, BlockSize: 4}, boom); err == nil {
		t.Error("Run should propagate reader errors")
	}
	if _, err := Run(Options{Assoc: 0, BlockSize: 1}, nil); err == nil {
		t.Error("Run should reject invalid options")
	}
}

var errTest = errorString("test error")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestCountersString(t *testing.T) {
	s := MustNew(Options{MaxLogSets: 2, Assoc: 2, BlockSize: 4})
	s.Access(trace.Access{Addr: 1})
	if s.Counters().String() == "" {
		t.Error("empty counters string")
	}
	if s.Options().Assoc != 2 {
		t.Error("Options accessor mismatch")
	}
}

// mustCfg builds a cache.Config test fixture, panicking on parameters
// that could only be wrong at authoring time.
func mustCfg(sets, assoc, blockSize int) cache.Config {
	c, err := cache.NewConfig(sets, assoc, blockSize)
	if err != nil {
		panic(err)
	}
	return c
}
