package core

import (
	"context"
	"fmt"
	"testing"

	"dew/internal/cache"
	"dew/internal/trace"
	"dew/internal/workload"
)

// mustShard partitions a stream at the given shard level.
func mustShard(t testing.TB, bs *trace.BlockStream, log int) *trace.ShardStream {
	t.Helper()
	ss, err := trace.ShardBlockStream(bs, log)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// assertShardedResults fails unless the sharded pass agrees bit for bit
// with the instrumented monolithic simulator on every configuration.
func assertShardedResults(t *testing.T, label string, want *Simulator, got *Sharded) {
	t.Helper()
	wr, gr := want.Results(), got.Results()
	if len(wr) != len(gr) {
		t.Fatalf("%s: %d results vs %d", label, len(wr), len(gr))
	}
	for i := range wr {
		if wr[i] != gr[i] {
			t.Errorf("%s: result %d: monolithic %+v, sharded %+v", label, i, wr[i], gr[i])
		}
	}
	if got.Accesses() != want.Counters().Accesses {
		t.Errorf("%s: sharded Accesses = %d, want %d", label, got.Accesses(), want.Counters().Accesses)
	}
}

// TestShardedEquivalence proves the sharded pass bit-identical to the
// instrumented monolithic pass for FIFO and LRU across every shard
// level of each shape — including S=0 (one tree, no shallow pass),
// S=MaxLogSets (every level above the leaf forest replayed shallow),
// and MinLogSets>0 forests where the shard level falls below, inside
// and above the simulated range's start.
func TestShardedEquivalence(t *testing.T) {
	apps := []workload.App{workload.CJPEG, workload.MPEG2Dec}
	shapes := []Options{
		{MaxLogSets: 6, Assoc: 4, BlockSize: 16},
		{MaxLogSets: 5, Assoc: 8, BlockSize: 4},
		{MinLogSets: 2, MaxLogSets: 7, Assoc: 2, BlockSize: 32},
		{MinLogSets: 3, MaxLogSets: 6, Assoc: 4, BlockSize: 64},
		{MaxLogSets: 5, Assoc: 1, BlockSize: 8},
		{MaxLogSets: 6, Assoc: 4, BlockSize: 16, Policy: cache.LRU},
		{MinLogSets: 1, MaxLogSets: 5, Assoc: 8, BlockSize: 32, Policy: cache.LRU},
	}
	for _, app := range apps {
		tr := workload.Take(app.Generator(7), 30_000)
		for _, opt := range shapes {
			bs := mustStream(t, tr, opt.BlockSize)
			inst := runInstrumented(t, opt, tr)
			for log := 0; log <= opt.MaxLogSets; log++ {
				label := fmt.Sprintf("%s/min%d/max%d/A%d/B%d/%v/S%d",
					app.Name, opt.MinLogSets, opt.MaxLogSets, opt.Assoc, opt.BlockSize, opt.Policy, log)
				ss := mustShard(t, bs, log)
				sh, err := SimulateSharded(context.Background(), opt, ss, 4)
				if err != nil {
					t.Fatal(err)
				}
				assertShardedResults(t, label, inst, sh)
			}
		}
	}
}

// TestShardedMidRunBoundaries feeds each tree its substream in chunks
// cut through the middle of runs (the boundary every chunked consumer
// must tolerate) and checks the stitched pass still matches the
// monolithic one — proving the per-tree replay inherits AccessRuns'
// mid-run soundness.
func TestShardedMidRunBoundaries(t *testing.T) {
	tr := workload.Take(workload.G721Enc.Generator(3), 20_000)
	for _, opt := range []Options{
		{MaxLogSets: 6, Assoc: 4, BlockSize: 16},
		{MinLogSets: 1, MaxLogSets: 6, Assoc: 4, BlockSize: 16, Policy: cache.LRU},
	} {
		const log = 2
		bs := mustStream(t, tr, opt.BlockSize)
		ss := mustShard(t, bs, log)
		want := runInstrumented(t, opt, tr)

		sh, err := NewSharded(opt, log, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Replay the shallow pass whole, but hand every tree its
		// substream in weight-split halves: each second half starts
		// mid-run and must fold into the first.
		if sh.shallow != nil {
			if err := sh.shallow.SimulateStream(bs); err != nil {
				t.Fatal(err)
			}
		}
		for t2 := range sh.trees {
			sub := &ss.Shards[t2]
			var ids []uint64
			var runs []uint32
			for i, id := range sub.IDs {
				w := sub.Runs[i]
				if w > 1 {
					ids = append(ids, id, id)
					runs = append(runs, w/2, w-w/2)
				} else {
					ids = append(ids, id)
					runs = append(runs, w)
				}
			}
			sh.trees[t2].AccessRuns(ids, runs)
		}
		// Stitch by rerunning the public path on a fresh pass and
		// comparing the hand-fed simulators' tables against it.
		pub, err := SimulateSharded(context.Background(), opt, ss, 2)
		if err != nil {
			t.Fatal(err)
		}
		assertShardedResults(t, fmt.Sprintf("public/%v", opt.Policy), want, pub)
		for t2 := range sh.trees {
			a, b := sh.trees[t2], pub.trees[t2]
			for l := range a.missA {
				if a.missA[l] != b.missA[l] || a.missDM[l] != b.missDM[l] {
					t.Errorf("%v: tree %d level %d: mid-run split (%d,%d) vs whole (%d,%d)",
						opt.Policy, t2, l, a.missA[l], a.missDM[l], b.missA[l], b.missDM[l])
				}
			}
		}
	}
}

// TestShardedReset reuses one sharded pass across repeated replays;
// every replay must reproduce the first's results exactly.
func TestShardedReset(t *testing.T) {
	tr := workload.Take(workload.DJPEG.Generator(5), 15_000)
	opt := Options{MaxLogSets: 6, Assoc: 4, BlockSize: 16}
	bs := mustStream(t, tr, opt.BlockSize)
	ss := mustShard(t, bs, 3)
	sh, err := SimulateSharded(context.Background(), opt, ss, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := sh.Results()
	for i := 0; i < 3; i++ {
		sh.Reset()
		if sh.Accesses() != 0 {
			t.Fatal("Reset left a nonzero access count")
		}
		if err := sh.SimulateStream(context.Background(), ss); err != nil {
			t.Fatal(err)
		}
		for j, r := range sh.Results() {
			if r != want[j] {
				t.Fatalf("replay %d: result %d = %+v, want %+v", i, j, r, want[j])
			}
		}
	}
}

// TestShardedRepeatedReplay replays the same shard stream twice on one
// pass without Reset — a chunked replay, which the monolithic entry
// points also support — and demands agreement with the monolithic
// simulator fed the stream twice.
func TestShardedRepeatedReplay(t *testing.T) {
	tr := workload.Take(workload.CJPEG.Generator(8), 10_000)
	for _, opt := range []Options{
		{MaxLogSets: 6, Assoc: 4, BlockSize: 16},
		{MinLogSets: 4, MaxLogSets: 6, Assoc: 4, BlockSize: 16}, // S ≤ MinLogSets: no shallow pass
		{MaxLogSets: 5, Assoc: 2, BlockSize: 8, Policy: cache.LRU},
	} {
		bs := mustStream(t, tr, opt.BlockSize)
		ss := mustShard(t, bs, 2)
		mono := MustNew(opt)
		sh, err := NewSharded(opt, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			if err := mono.SimulateStream(bs); err != nil {
				t.Fatal(err)
			}
			if err := sh.SimulateStream(context.Background(), ss); err != nil {
				t.Fatal(err)
			}
			wr, gr := mono.Results(), sh.Results()
			for i := range wr {
				if wr[i] != gr[i] {
					t.Errorf("min%d round %d result %d: monolithic %+v, sharded %+v",
						opt.MinLogSets, round, i, wr[i], gr[i])
				}
			}
		}
	}
}

// TestShardedRejects covers the constructor's and replayer's guards.
func TestShardedRejects(t *testing.T) {
	tr := workload.Take(workload.CJPEG.Generator(1), 500)
	opt := Options{MaxLogSets: 4, Assoc: 2, BlockSize: 16}
	bs := mustStream(t, tr, 16)
	if _, err := NewSharded(opt, 5, 0); err == nil {
		t.Error("shard level above MaxLogSets accepted")
	}
	if _, err := NewSharded(opt, -1, 0); err == nil {
		t.Error("negative shard level accepted")
	}
	inst := opt
	inst.Instrument = true
	if _, err := NewSharded(inst, 2, 0); err == nil {
		t.Error("instrumented sharded pass accepted")
	}
	abl := opt
	abl.DisableMRA = true
	if _, err := NewSharded(abl, 2, 0); err == nil {
		t.Error("ablated sharded pass accepted")
	}
	sh, err := NewSharded(opt, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.SimulateStream(context.Background(), mustShard(t, bs, 3)); err == nil {
		t.Error("shard-level mismatch accepted")
	}
	wrongBlock := mustStream(t, tr, 4)
	if err := sh.SimulateStream(context.Background(), mustShard(t, wrongBlock, 2)); err == nil {
		t.Error("block-size mismatch accepted")
	}
}

// FuzzShardedEquivalence fuzzes the sharded pass against the
// instrumented monolithic path: arbitrary streams, both policies,
// arbitrary shard levels and forest shapes.
func FuzzShardedEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2), uint8(2), uint8(4), uint8(0), uint8(1), false)
	f.Add([]byte{0, 0, 0, 0, 0, 0}, uint8(0), uint8(0), uint8(1), uint8(2), uint8(0), true)
	f.Add([]byte{9, 9, 1, 1, 9, 9, 1, 1, 2, 2}, uint8(3), uint8(1), uint8(3), uint8(1), uint8(3), false)
	f.Add([]byte{255, 0, 255, 1, 255, 2, 255, 3}, uint8(1), uint8(3), uint8(2), uint8(3), uint8(2), true)
	f.Fuzz(func(t *testing.T, raw []byte, logAssoc, logBlock, maxLog, minLog, shard uint8, lru bool) {
		if len(raw) == 0 || len(raw) > 4096 {
			return
		}
		opt := Options{
			MinLogSets: int(minLog % 4),
			MaxLogSets: int(minLog%4) + int(maxLog%5),
			Assoc:      1 << (logAssoc % 4),
			BlockSize:  1 << (logBlock % 4),
		}
		if lru {
			opt.Policy = cache.LRU
		}
		log := int(shard) % (opt.MaxLogSets + 1)
		tr := make(trace.Trace, 0, len(raw)/2+1)
		for i := 0; i+1 < len(raw); i += 2 {
			tr = append(tr, trace.Access{Addr: uint64(raw[i])<<3 | uint64(raw[i+1])&7})
		}
		if len(tr) == 0 {
			return
		}
		bs, err := tr.BlockStream(opt.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := trace.ShardBlockStream(bs, log)
		if err != nil {
			t.Fatal(err)
		}
		inst := MustNew(opt)
		for _, a := range tr {
			inst.Access(a)
		}
		sh, err := SimulateSharded(context.Background(), opt, ss, 3)
		if err != nil {
			t.Fatal(err)
		}
		wr, gr := inst.Results(), sh.Results()
		for i := range wr {
			if wr[i] != gr[i] {
				t.Fatalf("S=%d result %d: monolithic %+v, sharded %+v", log, i, wr[i], gr[i])
			}
		}
		if sh.Accesses() != uint64(len(tr)) {
			t.Fatalf("Accesses = %d, want %d", sh.Accesses(), len(tr))
		}
	})
}
