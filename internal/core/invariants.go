package core

import "fmt"

// CheckInvariants exhaustively validates the structural invariants the
// DEW correctness argument rests on. It is O(nodes × assoc) and intended
// for tests and debugging, not for per-access use. The invariants:
//
//  1. Bookkeeping ranges: fill ≤ A, head < A, wave pointers in [-1, A).
//  2. No duplicate tags within a node's live ways (a set holds a block
//     at most once).
//  3. MRA residency: a node's MRA tag is present in its tag list (it was
//     inserted on its last miss or already resident on its last hit).
//  4. MRA chain (Property 2's induction): if a node's MRA is b, then the
//     child node on b's path also has MRA b — this is what makes the
//     cut-off sound for every deeper level.
//  5. MRE exclusion (Property 4's soundness): a node's MRE tag is not in
//     its tag list.
//  6. Wave soundness (Property 3): a live entry (b, w≥0) implies the
//     child node on b's path either holds b exactly at way w, or does
//     not hold b at all.
//  7. LRU recency list (LRU passes): each non-empty node's older/newer
//     links form one doubly-linked chain from lruWay to mruWay visiting
//     every filled way exactly once, and the MRU way holds the node's
//     MRA tag (the most recently used entry is the most recently
//     accessed tag).
func (s *Simulator) CheckInvariants() error {
	for li := range s.levels {
		lv := &s.levels[li]
		nodes := int(lv.mask) + 1
		for node := 0; node < nodes; node++ {
			base := node * s.assoc
			fill := int(lv.node[node].fill)
			if fill < 0 || fill > s.assoc {
				return fmt.Errorf("core: level %d node %d: fill %d out of range", li, node, fill)
			}
			if h := lv.node[node].head; h < 0 || int(h) >= s.assoc {
				return fmt.Errorf("core: level %d node %d: head %d out of range", li, node, h)
			}
			for w := 0; w < fill; w++ {
				if v := lv.wave[base+w]; v < -1 || int(v) >= s.assoc {
					return fmt.Errorf("core: level %d node %d way %d: wave %d out of range", li, node, w, v)
				}
				for w2 := w + 1; w2 < fill; w2++ {
					if lv.tags[base+w] == lv.tags[base+w2] {
						return fmt.Errorf("core: level %d node %d: duplicate tag %#x at ways %d and %d",
							li, node, lv.tags[base+w], w, w2)
					}
				}
			}

			if s.isLRU && fill > 0 {
				// Walk the recency chain LRU → MRU: it must visit every
				// filled way exactly once with mutually consistent links.
				seen := make([]bool, fill)
				w := int(lv.node[node].lruWay)
				if w < 0 || w >= fill {
					return fmt.Errorf("core: level %d node %d: lruWay %d outside fill %d", li, node, w, fill)
				}
				if lv.older[base+w] != -1 {
					return fmt.Errorf("core: level %d node %d: LRU endpoint %d has older link %d",
						li, node, w, lv.older[base+w])
				}
				steps := 0
				for {
					if seen[w] {
						return fmt.Errorf("core: level %d node %d: recency cycle at way %d", li, node, w)
					}
					seen[w] = true
					steps++
					nw := int(lv.newer[base+w])
					if nw < 0 {
						break
					}
					if nw >= fill {
						return fmt.Errorf("core: level %d node %d: newer link %d outside fill %d", li, node, nw, fill)
					}
					if int(lv.older[base+nw]) != w {
						return fmt.Errorf("core: level %d node %d: links disagree between ways %d and %d",
							li, node, w, nw)
					}
					w = nw
				}
				if steps != fill {
					return fmt.Errorf("core: level %d node %d: recency chain covers %d of %d ways", li, node, steps, fill)
				}
				if w != int(lv.node[node].mruWay) {
					return fmt.Errorf("core: level %d node %d: chain ends at way %d, mruWay %d",
						li, node, w, lv.node[node].mruWay)
				}
				if lv.tags[base+w] != lv.node[node].mra {
					return fmt.Errorf("core: level %d node %d: MRU way %d holds %#x, MRA is %#x",
						li, node, w, lv.tags[base+w], lv.node[node].mra)
				}
			}

			find := func(l *level, n int, b uint64) int {
				nb := n * s.assoc
				for w := 0; w < int(l.node[n].fill); w++ {
					if l.tags[nb+w] == b {
						return w
					}
				}
				return -1
			}

			if lv.node[node].mraValid() {
				b := lv.node[node].mra
				if find(lv, node, b) < 0 {
					return fmt.Errorf("core: level %d node %d: MRA %#x not resident", li, node, b)
				}
				if li+1 < len(s.levels) {
					child := &s.levels[li+1]
					cn := int(b & child.mask)
					if cn&int(lv.mask) != node {
						return fmt.Errorf("core: level %d node %d: MRA %#x maps to child %d off the node's subtree",
							li, node, b, cn)
					}
					if !child.node[cn].mraValid() || child.node[cn].mra != b {
						return fmt.Errorf("core: level %d node %d: MRA chain broken: child node %d MRA %#x (ok=%v), want %#x",
							li, node, cn, child.node[cn].mra, child.node[cn].mraValid(), b)
					}
				}
			}

			if lv.node[node].mreOK {
				if find(lv, node, lv.node[node].mre) >= 0 {
					return fmt.Errorf("core: level %d node %d: MRE %#x still resident", li, node, lv.node[node].mre)
				}
			}

			if li+1 < len(s.levels) {
				child := &s.levels[li+1]
				for w := 0; w < fill; w++ {
					v := lv.wave[base+w]
					if v < 0 {
						continue
					}
					b := lv.tags[base+w]
					cn := int(b & child.mask)
					at := find(child, cn, b)
					if at >= 0 && at != int(v) {
						return fmt.Errorf("core: level %d node %d way %d: wave %d but tag %#x at child way %d",
							li, node, w, v, b, at)
					}
				}
			}
		}
	}
	return nil
}

// PaperBits returns the storage the paper's Section 5 accounting assigns
// to one simulation tree with these options: per node (cache set), 96
// bits of MRA/MRE state plus 64 bits (32-bit tag + 32-bit wave pointer)
// per tag-list entry, i.e. S × (96 + 64·A) bits per level, summed over
// all levels.
func (o Options) PaperBits() uint64 {
	var bits uint64
	for l := o.MinLogSets; l <= o.MaxLogSets; l++ {
		bits += uint64(1<<l) * uint64(96+64*o.Assoc)
	}
	return bits
}
