package core

import (
	"fmt"

	"dew/internal/trace"
)

// SimulateStream replays a materialized block stream through the pass.
// The stream must have been materialized at the pass's block size — the
// simulator consumes block IDs directly, with no per-access address
// shift or struct load. With Options.Instrument unset and no property
// ablated this is the fastest entry point: one tree walk per run, with
// run weights folded arithmetically into Counters.Accesses.
//
// The stream is only read, never written, so one stream may be shared
// by any number of concurrent SimulateStream calls on distinct
// simulators (the design-space layers rely on this).
func (s *Simulator) SimulateStream(bs *trace.BlockStream) error {
	if bs.BlockSize != s.opt.BlockSize {
		return fmt.Errorf("core: stream materialized at block size %d, pass simulates %d",
			bs.BlockSize, s.opt.BlockSize)
	}
	s.AccessRuns(bs.IDs, bs.Runs)
	return nil
}

// AccessRuns simulates a run-length-compressed sequence of block IDs:
// ids[i] — a block address already shifted by the pass's block size —
// accessed runs[i] consecutive times. Entries with a zero run weight
// are skipped. Callers normally obtain the columns from a
// trace.BlockStream via SimulateStream; AccessRuns itself accepts any
// split of a stream, including chunks that start mid-run (the repeated
// head is recognized and folded like any other repeat).
//
// Exactness of run folding rests on Property 2: every access after the
// first of a run repeats the previous block, which is by construction a
// level-0 MRA hit — a hit at every simulated configuration that
// mutates no replacement state (FIFO never reorders on hits; under LRU
// the repeated block is already at the MRU end of the recency order,
// so touching it again moves nothing and cannot change any victim
// choice). The counter-free fast path
// therefore walks the tree once per run and adds the full run weight to
// Counters.Accesses; the instrumented path walks once and folds the
// remaining weight into the level-0 MRA-hit counters arithmetically,
// exactly as per-access Access calls would have counted them. With a
// property ablated the fold is invalid (ablations change which counters
// move on a repeat), so each run is expanded through Access.
func (s *Simulator) AccessRuns(ids []uint64, runs []uint32) {
	if len(ids) != len(runs) {
		// Fail loudly on every path: the fast path's weight pre-pass
		// would otherwise silently disagree with its walk.
		panic(fmt.Sprintf("core: AccessRuns columns disagree: %d ids, %d runs", len(ids), len(runs)))
	}
	if s.opt.DisableMRA || s.opt.DisableWave || s.opt.DisableMRE {
		off := s.offBits
		for i, id := range ids {
			for k := uint32(0); k < runs[i]; k++ {
				s.Access(trace.Access{Addr: id << off})
			}
		}
		return
	}
	if s.opt.Instrument {
		off := s.offBits
		for i, id := range ids {
			w := runs[i]
			if w == 0 {
				continue
			}
			s.Access(trace.Access{Addr: id << off})
			// The remaining w-1 accesses are level-0 MRA hits: each
			// would count one access, one node evaluation pair, one tag
			// comparison and one Property 2 cut-off, then stop.
			rest := uint64(w - 1)
			s.counters.Accesses += rest
			s.counters.NodeEvaluations += 2 * rest
			s.counters.TagComparisons += rest
			s.counters.MRACount += rest
		}
		return
	}

	if !s.isLRU {
		s.counters.Accesses += s.runsFastFIFO(ids, runs)
	} else {
		var total uint64
		prev, ok := s.lastBlk, s.lastOK
		for i, id := range ids {
			w := runs[i]
			if w == 0 {
				continue
			}
			total += uint64(w)
			if ok && id == prev {
				// The run continues the previously simulated block — a
				// chunk boundary mid-run, or a repeat across two
				// AccessRuns calls. Guaranteed level-0 MRA hits,
				// nothing to do.
				continue
			}
			prev, ok = id, true
			s.accessFast(id)
		}
		s.lastBlk, s.lastOK = prev, ok
		s.counters.Accesses += total
	}
	s.foldExitHist()
}

// runsFastFIFO is the columnar FIFO walk: the counter-free fast path
// over the raw ids column, returning the total access weight consumed.
// Results are bit-identical to the instrumented path — batch_test.go
// and the stream equivalence tests enforce it.
//
// The walk sheds every piece of work-saving state the per-access walk
// maintains, keeping only the state results are made of:
//
//   - No wave pointers (Property 3). A level decided by a wave probe
//     reaches exactly the same hit way or miss verdict as the tag-list
//     scan it avoids, and the FIFO state evolves identically either
//     way. Dropping the machinery removes the only value carried
//     *across* levels (parentWave/parentIdx and the wave refresh — the
//     hottest store of the per-access walk), so every level of a walk
//     depends on blk alone and the CPU can overlap the levels' loads
//     freely.
//   - No MRE records (Property 4). The MRE tag check only spares scans,
//     and the resurrection swap only restores a wave pointer; neither
//     changes a verdict. Not maintaining them means a warm miss loads
//     no victim tag and stores no MRE state — an eviction is just the
//     cursor bump and the tag write.
//
// Both are work-saving devices, not result-changing ones, but leaving
// them stale would be unsound for the entry points that still use them,
// so the walk concludes by resetting the wave pointers and MRE records
// to "unknown" — always sound, merely unhelpful until repopulated — one
// sweep over two small arenas per call, amortized across the whole
// column.
//
// The warm 4-way level (the steady state of the sweep shapes) updates
// without a data-dependent branch: the hit/miss outcome of a warm level
// is close to a coin flip on real traces, so branching on it would
// mispredict on most visits; instead the unrolled scan (at most one
// comparison can match) and the way/cursor/miss-count selections
// compile to conditional moves, and the tag write is idempotent on a
// hit (it rewrites the hit way's own tag).
//
// LRU passes take the generic accessFast loop instead: every non-MRA
// hit must reorder the node's recency links, update work this hot loop
// has no slot for.
func (s *Simulator) runsFastFIFO(ids []uint64, runs []uint32) uint64 {
	assoc := s.assoc
	nodes := s.nodes
	tags := s.tags
	missA := s.missA
	exitHist := s.exitHist
	lvlMask := s.lvlMask
	nLevels := len(lvlMask)
	lvlNodeOff := s.lvlNodeOff[:nLevels]
	lvlWayOff := s.lvlWayOff[:nLevels]

	warm4 := assoc == 4
	var misses uint64 // insertions performed; any of them moves a way
	prev, ok := s.lastBlk, s.lastOK

	// One tight pre-pass folds the whole weight column: the walk loop
	// then iterates over ids alone, with no per-run weight load.
	// Zero-weight entries (impossible in a materialized BlockStream,
	// where every run is at least 1, but legal in a hand-built call)
	// must not be simulated; the rare column containing one is
	// compacted first.
	var total uint64
	hasZero := false
	for _, w := range runs {
		total += uint64(w)
		if w == 0 {
			hasZero = true
		}
	}
	if hasZero {
		clean := make([]uint64, 0, len(ids))
		for i, blk := range ids {
			if runs[i] != 0 {
				clean = append(clean, blk)
			}
		}
		ids = clean
	}

	var pf uint64 // prefetch sink; forces the touch loads to issue

walk:
	for idx := 0; idx < len(ids); idx++ {
		blk := ids[idx]
		if ok && blk == prev {
			continue
		}
		prev, ok = blk, true

		// Touch the next id's mid-level node records while this walk
		// runs: columnar materialization makes future block IDs visible,
		// so their scattered record loads — the dominant stall of the
		// walk — can start one walk early. The shallow levels' arenas
		// are permanently cache-resident and need no help.
		if idx+1 < len(ids) && nLevels > 6 {
			nb := ids[idx+1]
			pf += nodes[int(lvlNodeOff[4])+int(nb&lvlMask[4])].mra
			pf += nodes[int(lvlNodeOff[5])+int(nb&lvlMask[5])].mra
			pf += nodes[int(lvlNodeOff[6])+int(nb&lvlMask[6])].mra
		}

		for li := range lvlMask {
			node := int(blk & lvlMask[li])
			nd := &nodes[int(lvlNodeOff[li])+node]
			fill := int(nd.fill)

			// Direct-mapped check, doubling as Property 2: decided from
			// the packed record alone (fill > 0 stands in for MRA
			// validity; see nodeState.mraValid).
			if nd.mra == blk && fill > 0 {
				exitHist[li]++
				continue walk
			}

			base := int(lvlWayOff[li]) + node*assoc
			if fill == 4 && warm4 {
				hitWay := -1
				if tags[base+3] == blk {
					hitWay = 3
				}
				if tags[base+2] == blk {
					hitWay = 2
				}
				if tags[base+1] == blk {
					hitWay = 1
				}
				if tags[base] == blk {
					hitWay = 0
				}
				victim := int(nd.head)
				miss := 0
				if hitWay < 0 {
					miss = 1
				}
				way := hitWay
				if hitWay < 0 {
					way = victim
				}
				misses += uint64(miss)
				missA[li] += uint64(miss)
				nd.head = int8((victim + miss) & 3)
				tags[base+way] = blk
				nd.mra = blk
				continue
			}

			// Cold or non-4-way node: the transient (or generic-
			// associativity) branchy path, the same decisions Access
			// makes minus the counters and the wave/MRE bookkeeping.
			hitWay := -1
			for w := 0; w < fill; w++ {
				if tags[base+w] == blk {
					hitWay = w
					break
				}
			}
			if hitWay < 0 {
				misses++
				missA[li]++
				if fill < assoc {
					nd.fill++
					tags[base+fill] = blk
				} else {
					way := int(nd.head)
					nd.head = int8((way + 1) & (assoc - 1))
					tags[base+way] = blk
				}
			}
			nd.mra = blk
		}
		exitHist[nLevels]++
	}

	s.lastBlk, s.lastOK = prev, ok
	s.pfSink = pf
	if misses > 0 {
		s.resetWaveDomain()
	}
	return total
}

// resetWaveDomain marks every wave pointer and MRE record "unknown".
// The empty states are always sound — Property 3, Property 4 and the
// resurrection restore simply fall back to scans until repopulated by
// the entry points that maintain them.
func (s *Simulator) resetWaveDomain() {
	for i := range s.wave {
		s.wave[i] = -1
	}
	for i := range s.nodes {
		s.nodes[i].mreOK = false
		s.nodes[i].mreWave = -1
	}
}
