package core

import "fmt"

// Counters records the work a DEW pass performed — the quantities
// Tables 3 and 4 of the paper report. All counts are totals over the
// whole pass.
type Counters struct {
	// Accesses is the number of trace requests simulated.
	Accesses uint64

	// NodeEvaluations counts simulation-tree node evaluations actually
	// performed, two per visited node: one for the direct-mapped
	// configuration the node carries (its MRA tag) and one for the A-way
	// configuration (its tag list). This is the paper's Table 4
	// "DEW node evaluations" convention; see UnoptimizedEvaluations.
	NodeEvaluations uint64

	// MRACount is the number of Property 2 cut-offs: the requested tag
	// was found in a node's MRA entry, proving a hit there and at every
	// larger set count, so deeper levels were not evaluated.
	MRACount uint64

	// Searches is the number of full tag-list scans performed.
	Searches uint64

	// WaveCount is the number of times a parent wave pointer decided hit
	// or miss with a single probe (Property 3), avoiding a scan.
	WaveCount uint64

	// MRECount is the number of times the MRE entry proved a miss
	// without a scan (Property 4).
	MRECount uint64

	// TagComparisons counts every tag equality test: MRA checks, wave
	// probes, MRE checks and scan steps. Comparable with the reference
	// simulator's TagComparisons (Table 3).
	TagComparisons uint64
}

// Counters returns a snapshot of the pass's work counters.
func (s *Simulator) Counters() Counters { return s.counters }

// UnoptimizedEvaluations returns the node-evaluation count a simulator
// without any of DEW's properties would perform for the same trace: two
// evaluations (direct-mapped + A-way) on every level for every access.
// It equals the paper's Table 4 column 2, which is exactly
// 2 × levels × requests for every benchmark (e.g. 770.43 M for JPEG
// encode's 25.68 M requests over 15 levels).
func (s *Simulator) UnoptimizedEvaluations() uint64 {
	return 2 * uint64(s.opt.Levels()) * s.counters.Accesses
}

// String renders the counters on one line.
func (c Counters) String() string {
	return fmt.Sprintf("accesses=%d nodeEvals=%d mra=%d searches=%d wave=%d mre=%d tagCmps=%d",
		c.Accesses, c.NodeEvaluations, c.MRACount, c.Searches, c.WaveCount, c.MRECount, c.TagComparisons)
}
