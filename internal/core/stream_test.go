package core

import (
	"fmt"
	"testing"

	"dew/internal/cache"
	"dew/internal/trace"
	"dew/internal/workload"
)

// mustStream materializes tr at the option's block size.
func mustStream(t testing.TB, tr trace.Trace, blockSize int) *trace.BlockStream {
	t.Helper()
	bs, err := tr.BlockStream(blockSize)
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

// TestSimulateStreamEquivalence proves the stream path bit-identical to
// the instrumented per-access path for FIFO and LRU across pass shapes,
// including MinLogSets > 0 forests; runs with weight > 1 are guaranteed
// by the generated workloads' sequential-fetch components.
func TestSimulateStreamEquivalence(t *testing.T) {
	apps := []workload.App{workload.CJPEG, workload.MPEG2Dec}
	shapes := []Options{
		{MaxLogSets: 6, Assoc: 4, BlockSize: 16},
		{MaxLogSets: 4, Assoc: 8, BlockSize: 4},
		{MinLogSets: 2, MaxLogSets: 7, Assoc: 2, BlockSize: 32},
		{MinLogSets: 3, MaxLogSets: 6, Assoc: 4, BlockSize: 64},
		{MaxLogSets: 5, Assoc: 1, BlockSize: 8},
		{MaxLogSets: 6, Assoc: 4, BlockSize: 16, Policy: cache.LRU},
		{MinLogSets: 1, MaxLogSets: 5, Assoc: 8, BlockSize: 32, Policy: cache.LRU},
	}
	for _, app := range apps {
		tr := workload.Take(app.Generator(7), 30_000)
		for _, opt := range shapes {
			label := fmt.Sprintf("%s/min%d/A%d/B%d/%v", app.Name, opt.MinLogSets, opt.Assoc, opt.BlockSize, opt.Policy)
			bs := mustStream(t, tr, opt.BlockSize)
			if bs.CompressionRatio() <= 1 && opt.BlockSize >= 16 {
				t.Fatalf("%s: workload produced no runs to fold (ratio %.2f)", label, bs.CompressionRatio())
			}

			inst := runInstrumented(t, opt, tr)

			fast := MustNew(opt)
			if err := fast.SimulateStream(bs); err != nil {
				t.Fatal(err)
			}
			if err := fast.CheckInvariants(); err != nil {
				t.Fatalf("%s: stream-path invariants: %v", label, err)
			}
			if got := fast.Counters().Accesses; got != uint64(len(tr)) {
				t.Errorf("%s: stream path Accesses = %d, want %d", label, got, len(tr))
			}
			assertSameResults(t, label, inst, fast)
		}
	}
}

// TestSimulateStreamRejectsBlockMismatch guards the one way a stream can
// be replayed wrongly: at a block size it was not materialized for.
func TestSimulateStreamRejectsBlockMismatch(t *testing.T) {
	tr := workload.Take(workload.CJPEG.Generator(1), 100)
	bs := mustStream(t, tr, 16)
	s := MustNew(Options{MaxLogSets: 3, Assoc: 2, BlockSize: 32})
	if err := s.SimulateStream(bs); err == nil {
		t.Fatal("block-size mismatch accepted")
	}
}

// TestAccessRunsChunked splits one stream arbitrarily — including cuts
// through the middle of a run, so later chunks start mid-run — and
// demands identical results to the whole-stream replay.
func TestAccessRunsChunked(t *testing.T) {
	tr := workload.Take(workload.G721Enc.Generator(3), 20_000)
	for _, opt := range []Options{
		{MaxLogSets: 6, Assoc: 4, BlockSize: 16},
		{MinLogSets: 2, MaxLogSets: 6, Assoc: 4, BlockSize: 16, Policy: cache.LRU},
	} {
		bs := mustStream(t, tr, opt.BlockSize)
		want := runInstrumented(t, opt, tr)

		// Chunk by runs.
		for _, chunk := range []int{1, 3, 1000} {
			s := MustNew(opt)
			for i := 0; i < bs.Len(); i += chunk {
				end := i + chunk
				if end > bs.Len() {
					end = bs.Len()
				}
				s.AccessRuns(bs.IDs[i:end], bs.Runs[i:end])
			}
			assertSameResults(t, fmt.Sprintf("chunk=%d", chunk), want, s)
		}

		// Cut every run of weight > 1 in half: the second half starts
		// mid-run and must fold into the first.
		var ids []uint64
		var runs []uint32
		for i, id := range bs.IDs {
			w := bs.Runs[i]
			if w > 1 {
				ids = append(ids, id, id)
				runs = append(runs, w/2, w-w/2)
			} else {
				ids = append(ids, id)
				runs = append(runs, w)
			}
		}
		split := MustNew(opt)
		split.AccessRuns(ids, runs)
		assertSameResults(t, "mid-run split", want, split)
		if got := split.Counters().Accesses; got != uint64(len(tr)) {
			t.Errorf("mid-run split: Accesses = %d, want %d", got, len(tr))
		}

		// Zero-weight entries are skipped without touching state.
		zeros := MustNew(opt)
		var zIDs []uint64
		var zRuns []uint32
		for i, id := range bs.IDs {
			zIDs = append(zIDs, id^0xdeadbeef, id)
			zRuns = append(zRuns, 0, bs.Runs[i])
		}
		zeros.AccessRuns(zIDs, zRuns)
		assertSameResults(t, "zero-weight entries", want, zeros)
	}
}

// TestAccessRunsInstrumented routes the stream through the counted path
// and checks the arithmetic fold reproduces Access's counters exactly,
// for both the Instrument switch and every property ablation (which must
// expand runs instead of folding).
func TestAccessRunsInstrumented(t *testing.T) {
	tr := workload.Take(workload.DJPEG.Generator(9), 15_000)
	ablations := []struct {
		name string
		mod  func(*Options)
	}{
		{"instrument", func(o *Options) { o.Instrument = true }},
		{"noMRA", func(o *Options) { o.DisableMRA = true }},
		{"noWave", func(o *Options) { o.DisableWave = true }},
		{"noMRE", func(o *Options) { o.DisableMRE = true }},
		{"none", func(o *Options) {
			o.DisableMRA, o.DisableWave, o.DisableMRE = true, true, true
		}},
	}
	for _, pol := range []cache.Policy{cache.FIFO, cache.LRU} {
		base := Options{MaxLogSets: 5, Assoc: 4, BlockSize: 16, Policy: pol}
		bs := mustStream(t, tr, base.BlockSize)
		for _, ab := range ablations {
			opt := base
			ab.mod(&opt)
			want := runInstrumented(t, opt, tr)
			got := MustNew(opt)
			if err := got.SimulateStream(bs); err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("%v/%s", pol, ab.name)
			assertSameResults(t, label, want, got)
			if want.Counters() != got.Counters() {
				t.Errorf("%s: stream counters %+v, per-access counters %+v",
					label, got.Counters(), want.Counters())
			}
		}
	}
}

// TestAccessRunsInterleaved mixes all three entry points on one
// simulator; the shared repeated-block memo must keep them coherent.
func TestAccessRunsInterleaved(t *testing.T) {
	tr := workload.Take(workload.CJPEG.Generator(11), 12_000)
	opt := Options{MaxLogSets: 6, Assoc: 4, BlockSize: 16}
	bs := mustStream(t, tr, opt.BlockSize)
	want := runInstrumented(t, opt, tr)

	mixed := MustNew(opt)
	third := len(tr) / 3
	// First third as raw accesses, then the stream tail covering the
	// rest: rebuild a stream for each remaining segment.
	mixed.AccessBatch(tr[:third])
	midStream := mustStream(t, tr[third:2*third], opt.BlockSize)
	if err := mixed.SimulateStream(midStream); err != nil {
		t.Fatal(err)
	}
	for _, a := range tr[2*third:] {
		mixed.Access(a)
	}
	assertSameResults(t, "batch+stream+access", want, mixed)
	_ = bs
}

// FuzzStreamEquivalence fuzzes the stream path against the instrumented
// per-access path: arbitrary folded address streams, both policies,
// forest (MinLogSets > 0) shapes included.
func FuzzStreamEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2), uint8(2), uint8(4), uint8(0), false)
	f.Add([]byte{0, 0, 0, 0, 0, 0}, uint8(0), uint8(0), uint8(1), uint8(2), true)
	f.Add([]byte{9, 9, 1, 1, 9, 9, 1, 1, 2, 2}, uint8(3), uint8(1), uint8(3), uint8(1), false)
	f.Add([]byte{255, 0, 255, 1, 255, 2, 255, 3}, uint8(1), uint8(3), uint8(2), uint8(3), true)
	f.Fuzz(func(t *testing.T, raw []byte, logAssoc, logBlock, maxLog, minLog uint8, lru bool) {
		if len(raw) == 0 || len(raw) > 4096 {
			return
		}
		opt := Options{
			MinLogSets: int(minLog % 4),
			MaxLogSets: int(minLog%4) + int(maxLog%5),
			Assoc:      1 << (logAssoc % 4),
			BlockSize:  1 << (logBlock % 4),
		}
		if lru {
			opt.Policy = cache.LRU
		}
		// Low bits vary inside a block so runs of weight > 1 appear.
		tr := make(trace.Trace, 0, len(raw)/2+1)
		for i := 0; i+1 < len(raw); i += 2 {
			tr = append(tr, trace.Access{Addr: uint64(raw[i])<<3 | uint64(raw[i+1])&7})
		}
		if len(tr) == 0 {
			return
		}
		bs, err := tr.BlockStream(opt.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		inst := MustNew(opt)
		for _, a := range tr {
			inst.Access(a)
		}
		fast := MustNew(opt)
		if err := fast.SimulateStream(bs); err != nil {
			t.Fatal(err)
		}
		if err := fast.CheckInvariants(); err != nil {
			t.Fatalf("stream-path invariants: %v", err)
		}
		if fast.Counters().Accesses != uint64(len(tr)) {
			t.Fatalf("Accesses = %d, want %d", fast.Counters().Accesses, len(tr))
		}
		wr, gr := inst.Results(), fast.Results()
		for i := range wr {
			if wr[i] != gr[i] {
				t.Fatalf("result %d: instrumented %+v, stream %+v", i, wr[i], gr[i])
			}
		}
	})
}
