package core

import (
	"testing"

	"dew/internal/cache"
	"dew/internal/refsim"
	"dew/internal/trace"
)

// FuzzExactness drives the exactness invariant from raw fuzz bytes:
// every byte pair becomes an address, the first bytes pick the pass
// parameters, and every covered configuration must match the reference
// simulator. Invariants are re-checked at the end of each run.
func FuzzExactness(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2), uint8(2), uint8(4))
	f.Add([]byte{0, 0, 0, 0, 0, 0}, uint8(0), uint8(0), uint8(1))
	f.Add([]byte{9, 9, 1, 1, 9, 9, 1, 1, 2, 2}, uint8(3), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, logAssoc, logBlock, maxLog uint8) {
		if len(raw) == 0 || len(raw) > 4096 {
			return
		}
		opt := Options{
			MaxLogSets: int(maxLog%5) + 1,
			Assoc:      1 << (logAssoc % 4),
			BlockSize:  1 << (logBlock % 4),
		}
		tr := make(trace.Trace, 0, len(raw)/2+1)
		for i := 0; i+1 < len(raw); i += 2 {
			// Fold into a small space so sets contend hard.
			tr = append(tr, trace.Access{Addr: uint64(raw[i])<<3 | uint64(raw[i+1])&7})
		}
		if len(tr) == 0 {
			return
		}
		s := MustNew(opt)
		if err := s.Simulate(tr.NewSliceReader()); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("invariants violated: %v", err)
		}
		for _, res := range s.Results() {
			want, err := refsim.RunTrace(res.Config, cache.FIFO, tr)
			if err != nil {
				t.Fatal(err)
			}
			if res.Misses != want.Misses {
				t.Fatalf("config %v: DEW %d misses, reference %d", res.Config, res.Misses, want.Misses)
			}
		}
	})
}
