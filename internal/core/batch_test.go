package core

import (
	"bytes"
	"fmt"
	"testing"

	"dew/internal/cache"
	"dew/internal/trace"
	"dew/internal/workload"
)

// runInstrumented drives the single-access instrumented path.
func runInstrumented(t *testing.T, opt Options, tr trace.Trace) *Simulator {
	t.Helper()
	s := MustNew(opt)
	for _, a := range tr {
		s.Access(a)
	}
	return s
}

// assertSameResults fails unless the two simulators agree bit for bit on
// every configuration's outcome and on the per-level miss splits.
func assertSameResults(t *testing.T, label string, want, got *Simulator) {
	t.Helper()
	wr, gr := want.Results(), got.Results()
	if len(wr) != len(gr) {
		t.Fatalf("%s: %d results vs %d", label, len(wr), len(gr))
	}
	for i := range wr {
		if wr[i] != gr[i] {
			t.Errorf("%s: result %d: instrumented %+v, batched %+v", label, i, wr[i], gr[i])
		}
	}
	for i := range want.levels {
		if want.missDM[i] != got.missDM[i] {
			t.Errorf("%s: level %d missDM: instrumented %d, batched %d",
				label, i, want.missDM[i], got.missDM[i])
		}
		if want.missA[i] != got.missA[i] {
			t.Errorf("%s: level %d missA: instrumented %d, batched %d",
				label, i, want.missA[i], got.missA[i])
		}
	}
}

// TestAccessBatchEquivalence checks the counter-free fast path against
// the instrumented path — including each single-property ablation of the
// instrumented path, which must not change results — across both
// policies and several pass shapes.
func TestAccessBatchEquivalence(t *testing.T) {
	apps := []workload.App{workload.CJPEG, workload.MPEG2Dec}
	shapes := []Options{
		{MaxLogSets: 6, Assoc: 4, BlockSize: 16},
		{MaxLogSets: 4, Assoc: 8, BlockSize: 4},
		{MinLogSets: 2, MaxLogSets: 7, Assoc: 2, BlockSize: 32},
		{MaxLogSets: 5, Assoc: 1, BlockSize: 8},
		{MaxLogSets: 6, Assoc: 4, BlockSize: 16, Policy: cache.LRU},
		{MaxLogSets: 3, Assoc: 16, BlockSize: 4, Policy: cache.LRU},
	}
	ablations := []struct {
		name string
		mod  func(*Options)
	}{
		{"full", func(*Options) {}},
		{"noMRA", func(o *Options) { o.DisableMRA = true }},
		{"noWave", func(o *Options) { o.DisableWave = true }},
		{"noMRE", func(o *Options) { o.DisableMRE = true }},
	}
	for _, app := range apps {
		tr := workload.Take(app.Generator(7), 30_000)
		for _, opt := range shapes {
			fast := MustNew(opt)
			fast.AccessBatch(tr)
			if err := fast.CheckInvariants(); err != nil {
				t.Fatalf("%s %+v: fast-path invariants: %v", app.Name, opt, err)
			}
			if got := fast.Counters().Accesses; got != uint64(len(tr)) {
				t.Errorf("%s %+v: fast path Accesses = %d, want %d", app.Name, opt, got, len(tr))
			}
			for _, ab := range ablations {
				abOpt := opt
				ab.mod(&abOpt)
				label := fmt.Sprintf("%s/%s/A%d/B%d/%v", app.Name, ab.name, opt.Assoc, opt.BlockSize, opt.Policy)
				inst := runInstrumented(t, abOpt, tr)
				assertSameResults(t, label, inst, fast)
			}
		}
	}
}

// TestAccessBatchChunking confirms that how a trace is split into
// batches cannot affect results, and that Instrument routes AccessBatch
// back onto the counted path.
func TestAccessBatchChunking(t *testing.T) {
	tr := workload.Take(workload.G721Enc.Generator(3), 20_000)
	opt := Options{MaxLogSets: 6, Assoc: 4, BlockSize: 16}

	whole := MustNew(opt)
	whole.AccessBatch(tr)

	for _, chunk := range []int{1, 7, 1024, trace.DefaultBatchSize} {
		split := MustNew(opt)
		for i := 0; i < len(tr); i += chunk {
			end := i + chunk
			if end > len(tr) {
				end = len(tr)
			}
			split.AccessBatch(tr[i:end])
		}
		assertSameResults(t, fmt.Sprintf("chunk=%d", chunk), whole, split)
	}

	instOpt := opt
	instOpt.Instrument = true
	inst := MustNew(instOpt)
	inst.AccessBatch(tr)
	want := runInstrumented(t, opt, tr)
	assertSameResults(t, "instrumented batch", want, inst)
	if inst.Counters() != want.Counters() {
		t.Errorf("Instrument: AccessBatch counters %+v, Access counters %+v",
			inst.Counters(), want.Counters())
	}
}

// TestAccessBatchInterleaved mixes the two exported entry points on one
// Simulator: Access must keep the fast path's repeated-block memo sound,
// so an interleaved sequence matches the pure single-access sequence.
func TestAccessBatchInterleaved(t *testing.T) {
	opt := Options{MaxLogSets: 2, Assoc: 2, BlockSize: 4}
	a := trace.Access{Addr: 0}
	b := trace.Access{Addr: 4}

	mixed := MustNew(opt)
	mixed.AccessBatch(trace.Trace{a})
	mixed.Access(b)
	mixed.AccessBatch(trace.Trace{a})

	pure := MustNew(opt)
	for _, acc := range []trace.Access{a, b, a} {
		pure.Access(acc)
	}
	assertSameResults(t, "interleaved", pure, mixed)

	// And the long way around: alternate entry points over a real trace.
	tr := workload.Take(workload.CJPEG.Generator(11), 10_000)
	opt = Options{MaxLogSets: 6, Assoc: 4, BlockSize: 16}
	alt := MustNew(opt)
	for i := 0; i < len(tr); i += 100 {
		end := i + 100
		if end > len(tr) {
			end = len(tr)
		}
		if (i/100)%2 == 0 {
			alt.AccessBatch(tr[i:end])
		} else {
			for _, acc := range tr[i:end] {
				alt.Access(acc)
			}
		}
	}
	want := runInstrumented(t, opt, tr)
	assertSameResults(t, "alternating", want, alt)
}

// TestSimulateBatchReaders runs the fast path through every batched
// reader front end — in-memory slice, DTB1 binary round trip, workload
// stream — and demands identical results from each.
func TestSimulateBatchReaders(t *testing.T) {
	const n = 15_000
	app := workload.DJPEG
	tr := workload.Take(app.Generator(5), n)
	opt := Options{MaxLogSets: 6, Assoc: 8, BlockSize: 16}

	want := runInstrumented(t, opt, tr)

	var bin bytes.Buffer
	bw := trace.NewBinWriter(&bin)
	for _, a := range tr {
		if err := bw.WriteAccess(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	readers := map[string]trace.Reader{
		"slice":  tr.NewSliceReader(),
		"binary": trace.NewBinReader(&bin),
		"stream": workload.Stream(app.Generator(5), n),
	}
	for name, r := range readers {
		s := MustNew(opt)
		if err := s.SimulateBatch(r); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertSameResults(t, name, want, s)
	}
}

// FuzzBatchEquivalence fuzzes the fast path against the instrumented
// path: identical results for arbitrary folded address streams under
// both policies.
func FuzzBatchEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2), uint8(2), uint8(4), false)
	f.Add([]byte{0, 0, 0, 0, 0, 0}, uint8(0), uint8(0), uint8(1), true)
	f.Add([]byte{9, 9, 1, 1, 9, 9, 1, 1, 2, 2}, uint8(3), uint8(1), uint8(3), false)
	f.Add([]byte{255, 0, 255, 1, 255, 2, 255, 3}, uint8(1), uint8(3), uint8(2), true)
	f.Fuzz(func(t *testing.T, raw []byte, logAssoc, logBlock, maxLog uint8, lru bool) {
		if len(raw) == 0 || len(raw) > 4096 {
			return
		}
		opt := Options{
			MaxLogSets: int(maxLog%5) + 1,
			Assoc:      1 << (logAssoc % 4),
			BlockSize:  1 << (logBlock % 4),
		}
		if lru {
			opt.Policy = cache.LRU
		}
		tr := make(trace.Trace, 0, len(raw)/2+1)
		for i := 0; i+1 < len(raw); i += 2 {
			tr = append(tr, trace.Access{Addr: uint64(raw[i])<<3 | uint64(raw[i+1])&7})
		}
		if len(tr) == 0 {
			return
		}
		inst := MustNew(opt)
		for _, a := range tr {
			inst.Access(a)
		}
		fast := MustNew(opt)
		fast.AccessBatch(tr)
		if err := fast.CheckInvariants(); err != nil {
			t.Fatalf("fast-path invariants: %v", err)
		}
		wr, gr := inst.Results(), fast.Results()
		for i := range wr {
			if wr[i] != gr[i] {
				t.Fatalf("result %d: instrumented %+v, batched %+v", i, wr[i], gr[i])
			}
		}
	})
}
