package core

import (
	"dew/internal/trace"
)

// AccessBatch simulates a slice of memory requests against every
// configuration of the pass. With Options.Instrument unset and no
// property ablated it takes the counter-free fast path — identical
// Results to Access, with only Counters.Accesses maintained; otherwise
// it feeds the instrumented per-access path so every counter moves
// exactly as it would under Access.
//
// A trace.Trace is itself an []trace.Access, so a whole in-memory trace
// can be passed in one call.
func (s *Simulator) AccessBatch(batch []trace.Access) {
	if s.opt.instrumented() {
		for _, a := range batch {
			s.Access(a)
		}
		return
	}
	s.counters.Accesses += uint64(len(batch))
	off := s.offBits
	prev, ok := s.lastBlk, s.lastOK
	for k := range batch {
		blk := batch[k].Addr >> off
		if ok && blk == prev {
			// A repeated block address is a guaranteed level-0 MRA hit:
			// the previous access left its level-0 node's MRA equal to
			// blk, and an MRA hit mutates nothing and stops the walk, so
			// the whole access is a no-op.
			continue
		}
		prev, ok = blk, true
		s.accessFast(blk)
	}
	s.lastBlk, s.lastOK = prev, ok
	s.foldExitHist()
}

// foldExitHist folds the pending exit-depth histogram into missDM: an
// exit at depth d means the walk MRA-missed (and so
// direct-mapped-missed) levels 0..d-1. Memoized skips and folded run
// weights are level-0 exits and contribute to no level, so they need no
// histogram entry at all. Called at the end of every counter-free batch
// or stream chunk, so missDM is current whenever no fast-path entry
// point is running.
func (s *Simulator) foldExitHist() {
	var suffix uint64
	for li := len(s.exitHist) - 1; li >= 1; li-- {
		suffix += s.exitHist[li]
		s.exitHist[li] = 0
		s.missDM[li-1] += suffix
	}
}

// SimulateBatch drains the reader through AccessBatch in
// trace.DefaultBatchSize chunks. It is the fast-path counterpart of
// Simulate.
func (s *Simulator) SimulateBatch(r trace.Reader) error {
	return trace.Drain(r, s.AccessBatch)
}

// accessFast is Access with the instrumentation compiled out: the same
// walk down the simulation tree deciding each node by P2 (MRA), P3
// (wave) or P4 (MRE) before falling back to a tag-list scan, mutating
// exactly the same state in exactly the same order, so results are
// bit-identical to the instrumented path.
//
// It walks the level-major arenas directly — the flattened level loop:
// the per-level node mask and arena offsets are computed incrementally
// in registers (mask doubles, offsets advance by the previous level's
// size), so the only memory a level touches before its MRA verdict is
// the node's own packed record. The arena slice headers are hoisted into
// locals once, outside the loop. Relative to Access, the control flow is
// also flattened: comparisons are ordered so the common case pays one
// branch (tag first, validity flag second — both pure loads), the MRE
// resurrection test is computed at a single site (re-checking
// mre == blk is idempotent, so the two-site instrumented flow and this
// one always agree), and the level-0 "no parent yet" case writes its
// parent wave refresh into a dedicated scratch slot at the end of the
// wave arena instead of branching on has-parent at every level.
func (s *Simulator) accessFast(blk uint64) {
	assoc := s.assoc
	nodes := s.nodes
	tags := s.tags
	wave := s.wave
	missA := s.missA
	exitHist := s.exitHist
	nLevels := len(s.levels)
	isLRU := s.isLRU

	mask := uint64(1)<<uint(s.opt.MinLogSets) - 1 // level-0 node mask, doubling per level
	nodeOff := 0                                  // arena offset of the level's node records
	wayOff := 0                                   // arena offset of the level's way entries

	parentWave := int8(-1)     // wave pointer read from the parent's matching entry
	parentIdx := len(wave) - 1 // arena index of the parent's matching entry; starts at the scratch slot

	for li := 0; li < nLevels; li++ {
		node := int(blk & mask)
		nd := &nodes[nodeOff+node]
		levelNodes := int(mask) + 1
		nodeOff += levelNodes
		base := wayOff + node*assoc
		wayOff += levelNodes * assoc
		mask = mask<<1 | 1

		// Direct-mapped check, doubling as Property 2. nd is one packed
		// record, so the usual outcome of a level — MRA hit, return — is
		// decided from a single cache line.
		if nd.mra == blk && nd.fill > 0 {
			// P2: hit here and at every deeper level; FIFO and LRU state
			// are unaffected by hits, so the walk stops. The exit depth
			// stands in for the per-level missDM increments (see
			// Simulator.exitHist).
			exitHist[li]++
			return
		}

		fill := int(nd.fill)

		// Decide associativity-A membership: P3, then P4, then scan.
		hitWay := -1
		if parentWave >= 0 {
			// P3: one probe decides hit or miss.
			w := int(parentWave)
			if w < fill && tags[base+w] == blk {
				hitWay = w
			}
		} else if nd.mre == blk && nd.mreOK {
			// P4: the most recently evicted tag cannot be resident —
			// a decided miss, no scan. The eviction path below re-derives
			// the resurrection from the same comparison.
		} else {
			if fill == 4 {
				// Unrolled branch-light scan for the ubiquitous warm
				// 4-way node: a node never holds duplicate tags
				// (CheckInvariants invariant 2), so at most one
				// comparison matches and scan order cannot change the
				// outcome — these compile to conditional moves instead
				// of a data-dependent break.
				if tags[base+3] == blk {
					hitWay = 3
				}
				if tags[base+2] == blk {
					hitWay = 2
				}
				if tags[base+1] == blk {
					hitWay = 1
				}
				if tags[base] == blk {
					hitWay = 0
				}
			} else {
				for w := 0; w < fill; w++ {
					if tags[base+w] == blk {
						hitWay = w
						break
					}
				}
			}
		}

		var n int
		coldFill := false
		if hitWay >= 0 {
			// Algorithm 1: Handle_hit.
			n = hitWay
		} else {
			// Algorithm 2: Handle_miss.
			missA[li]++
			if fill < assoc {
				// Cold fill: no eviction, wave pointer unknown.
				n = fill
				coldFill = true
				nd.fill++
				tags[base+n] = blk
				wave[base+n] = -1
			} else {
				if isLRU {
					// LRU victim: the recency list's LRU endpoint, O(1).
					n = int(nd.lruWay)
				} else {
					n = int(nd.head)
					nd.head = int8((n + 1) & (assoc - 1))
				}
				victimTag := tags[base+n]
				victimWave := wave[base+n]
				if nd.mre == blk && nd.mreOK {
					// Algorithm 2 lines 4-5: the requested tag is the
					// MRE — exchange the victim with the MRE entry,
					// restoring the tag's saved wave pointer.
					tags[base+n] = blk
					wave[base+n] = nd.mreWave
					nd.mre = victimTag
					nd.mreWave = victimWave
				} else {
					tags[base+n] = blk
					wave[base+n] = -1
					nd.mre = victimTag
					nd.mreWave = victimWave
					nd.mreOK = true
				}
			}
		}

		if isLRU {
			// Refresh LRU recency; the way's position never changes, so
			// wave pointers into and out of this entry stay valid.
			if coldFill {
				lruInsert(nd, s.older, s.newer, base, n)
			} else {
				lruTouch(nd, s.older, s.newer, base, n)
			}
		}

		nd.mra = blk
		wave[parentIdx] = int8(n)
		parentWave = wave[base+n]
		parentIdx = base + n
	}
	exitHist[nLevels]++
}
