package refsim

import (
	"strings"
	"testing"

	"dew/internal/cache"
	"dew/internal/trace"
)

func wr(addr uint64) trace.Access { return trace.Access{Addr: addr, Kind: trace.DataWrite} }
func rd(addr uint64) trace.Access { return trace.Access{Addr: addr, Kind: trace.DataRead} }

func TestWriteBackDirtyEviction(t *testing.T) {
	// S=1, A=1, B=8: write block 0 (dirty), then read block 8 evicting
	// it: one writeback of 8 bytes plus two 8-byte fills.
	s, err := NewSim(Options{
		Config:      mustCfg(1, 1, 8),
		Replacement: cache.FIFO,
		Write:       WriteBack,
		Alloc:       WriteAllocate,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Access(wr(0))
	s.Access(rd(8))
	tr := s.Traffic()
	if tr.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", tr.Writebacks)
	}
	if tr.BytesToMemory != 8 {
		t.Errorf("BytesToMemory = %d, want 8", tr.BytesToMemory)
	}
	if tr.BytesFromMemory != 16 {
		t.Errorf("BytesFromMemory = %d, want 16", tr.BytesFromMemory)
	}
}

func TestWriteBackCleanEviction(t *testing.T) {
	s, err := NewSim(Options{
		Config:      mustCfg(1, 1, 8),
		Replacement: cache.FIFO,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Access(rd(0)) // clean block
	s.Access(rd(8)) // evicts it
	tr := s.Traffic()
	if tr.Writebacks != 0 || tr.BytesToMemory != 0 {
		t.Errorf("clean eviction produced traffic: %+v", tr)
	}
}

func TestWriteThroughTraffic(t *testing.T) {
	// Every store goes to memory at the store width; blocks never dirty.
	s, err := NewSim(Options{
		Config:      mustCfg(1, 2, 8),
		Replacement: cache.FIFO,
		Write:       WriteThrough,
		Alloc:       WriteAllocate,
		StoreBytes:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Access(wr(0)) // miss: fill 8 + store-through 2
	s.Access(wr(0)) // hit: store-through 2
	s.Access(wr(4)) // hit (same block): store-through 2
	tr := s.Traffic()
	if tr.BytesFromMemory != 8 {
		t.Errorf("BytesFromMemory = %d, want 8", tr.BytesFromMemory)
	}
	if tr.BytesToMemory != 6 {
		t.Errorf("BytesToMemory = %d, want 6", tr.BytesToMemory)
	}
	if tr.Writebacks != 0 {
		t.Errorf("write-through produced writebacks: %d", tr.Writebacks)
	}
}

func TestNoWriteAllocateBypasses(t *testing.T) {
	// A write miss must not install the block: the following read of the
	// same block still misses.
	s, err := NewSim(Options{
		Config:      mustCfg(1, 2, 8),
		Replacement: cache.FIFO,
		Write:       WriteThrough,
		Alloc:       NoWriteAllocate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Access(wr(0)) {
		t.Fatal("first write should miss")
	}
	if s.Access(rd(0)) {
		t.Error("read after no-write-allocate miss should still miss")
	}
	if !s.Access(rd(0)) {
		t.Error("read after read fill should hit")
	}
	tr := s.Traffic()
	// One bypassed store (4 default bytes) + one read fill (8).
	if tr.BytesToMemory != 4 || tr.BytesFromMemory != 8 {
		t.Errorf("traffic = %+v", tr)
	}
	st := s.Stats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2", st.Misses)
	}
}

func TestWriteAllocateMatchesLegacyCounts(t *testing.T) {
	// With write-back + write-allocate, hit/miss counts must equal the
	// legacy New() simulator on any trace (the multi-config simulators
	// model exactly that behaviour).
	cfg := mustCfg(8, 2, 4)
	legacy := mustSim(cfg, cache.FIFO)
	full, err := NewSim(Options{Config: cfg, Replacement: cache.FIFO})
	if err != nil {
		t.Fatal(err)
	}
	tr := randomTrace(20000, 1<<10, 5)
	for _, a := range tr {
		if legacy.Access(a) != full.Access(a) {
			t.Fatalf("hit/miss divergence at %+v", a)
		}
	}
	if legacy.Stats().Misses != full.Stats().Misses {
		t.Errorf("miss counts diverge: %d vs %d", legacy.Stats().Misses, full.Stats().Misses)
	}
	if legacy.Traffic() != (Traffic{}) {
		t.Error("legacy simulator should report zero traffic")
	}
}

func TestWriteBackTotalTrafficConservation(t *testing.T) {
	// Every dirty block is written back at most once per residency, so
	// BytesToMemory <= writes*B and Writebacks <= write misses + hits.
	cfg := mustCfg(4, 2, 16)
	s, err := NewSim(Options{Config: cfg, Replacement: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	tr := randomTrace(30000, 1<<12, 6)
	writes := 0
	for _, a := range tr {
		if a.Kind == trace.DataWrite {
			writes++
		}
		s.Access(a)
	}
	trf := s.Traffic()
	if trf.Writebacks > uint64(writes) {
		t.Errorf("writebacks %d > writes %d", trf.Writebacks, writes)
	}
	if trf.BytesToMemory != trf.Writebacks*uint64(cfg.BlockSize) {
		t.Errorf("write-back traffic %d != writebacks %d × block %d",
			trf.BytesToMemory, trf.Writebacks, cfg.BlockSize)
	}
	if trf.BytesFromMemory == 0 {
		t.Error("no fill traffic recorded")
	}
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(Options{Config: cache.Config{Sets: 3}}); err == nil {
		t.Error("want error for invalid config")
	}
	if _, err := NewSim(Options{Config: mustCfg(1, 1, 1), StoreBytes: -1}); err == nil {
		t.Error("want error for negative store width")
	}
}

func TestPolicyStrings(t *testing.T) {
	if WriteBack.String() != "write-back" || WriteThrough.String() != "write-through" {
		t.Error("WritePolicy strings wrong")
	}
	if WriteAllocate.String() != "write-allocate" || NoWriteAllocate.String() != "no-write-allocate" {
		t.Error("AllocPolicy strings wrong")
	}
	if !strings.Contains(WritePolicy(9).String(), "9") || !strings.Contains(AllocPolicy(9).String(), "9") {
		t.Error("unknown policy strings wrong")
	}
}

// Write misses with write-allocate must stay consistent with the naive
// oracle (the store installs the block exactly like a read would).
func TestWritePathAgainstOracle(t *testing.T) {
	for _, policy := range []cache.Policy{cache.FIFO, cache.LRU} {
		cfg := mustCfg(4, 2, 4)
		sim, err := NewSim(Options{Config: cfg, Replacement: policy})
		if err != nil {
			t.Fatal(err)
		}
		oracle := newNaive(cfg, policy)
		tr := randomTrace(10000, 512, 7)
		for i, a := range tr {
			got := sim.Access(a)
			want := oracle.access(a.Addr)
			if got != want {
				t.Fatalf("%v access %d: sim=%v oracle=%v", policy, i, got, want)
			}
		}
	}
}
