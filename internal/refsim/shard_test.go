package refsim

import (
	"context"
	"math/rand"
	"testing"

	"dew/internal/cache"
	"dew/internal/trace"
)

func shardTrace(rng *rand.Rand, n int) trace.Trace {
	tr := make(trace.Trace, 0, n)
	addr := uint64(0)
	for len(tr) < n {
		switch rng.Intn(4) {
		case 0:
			run := rng.Intn(40) + 1
			for i := 0; i < run && len(tr) < n; i++ {
				tr = append(tr, trace.Access{Addr: addr, Kind: trace.IFetch})
				addr += 4
			}
		case 1:
			addr = uint64(rng.Intn(1 << 13))
			tr = append(tr, trace.Access{Addr: addr, Kind: trace.DataRead})
		default:
			addr += uint64(rng.Intn(96))
			tr = append(tr, trace.Access{Addr: addr, Kind: trace.DataWrite})
		}
	}
	return tr
}

// TestShardedMatchesMonolithic is the exactness claim: for every
// (sets, assoc, policy, shard level) with sets ≥ 2^S under FIFO/LRU,
// the sharded replay's statistics equal the monolithic stream replay
// bit for bit.
func TestShardedMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := shardTrace(rng, 30000)
	const block = 8
	bs, err := tr.BlockStream(block)
	if err != nil {
		t.Fatal(err)
	}
	for _, logSets := range []int{0, 1, 3, 5} {
		for _, assoc := range []int{1, 2, 4} {
			cfg, err := cache.NewConfig(1<<logSets, assoc, block)
			if err != nil {
				t.Fatal(err)
			}
			for _, policy := range []cache.Policy{cache.FIFO, cache.LRU} {
				want, err := RunStream(cfg, policy, bs)
				if err != nil {
					t.Fatal(err)
				}
				for log := 0; log <= 4; log++ {
					ss, err := trace.ShardBlockStream(bs, log)
					if err != nil {
						t.Fatal(err)
					}
					sh, err := NewSharded(cfg, policy, log, 3)
					if err != nil {
						t.Fatal(err)
					}
					if wantPar := log <= logSets; sh.Parallel() != wantPar {
						t.Fatalf("sets=%d log=%d: Parallel()=%v, want %v", cfg.Sets, log, sh.Parallel(), wantPar)
					}
					got, err := sh.SimulateStream(context.Background(), ss)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("sets=%d assoc=%d %v S=%d: sharded %+v, monolithic %+v",
							cfg.Sets, assoc, policy, log, got, want)
					}
				}
			}
		}
	}
}

// TestShardedRandomFallsBack checks the Random policy keeps the exact
// monolithic replay (its replacement stream is global, not per-set).
func TestShardedRandomFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := shardTrace(rng, 8000)
	bs, err := tr.BlockStream(4)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := trace.ShardBlockStream(bs, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustCfg(64, 2, 4)
	sh, err := NewSharded(cfg, cache.Random, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Parallel() {
		t.Fatal("Random policy must fall back to the monolithic replay")
	}
	got, err := sh.SimulateStream(context.Background(), ss)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunStream(cfg, cache.Random, bs)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("fallback diverged: %+v vs %+v", got, want)
	}
}

func TestShardedReset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := shardTrace(rng, 4000)
	bs, err := tr.BlockStream(4)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := trace.ShardBlockStream(bs, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mustCfg(16, 2, 4)
	sh, err := NewSharded(cfg, cache.LRU, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sh.SimulateStream(context.Background(), ss)
	if err != nil {
		t.Fatal(err)
	}
	sh.Reset()
	if got := sh.Stats(); got != (Stats{}) {
		t.Fatalf("stats after Reset: %+v", got)
	}
	second, err := sh.SimulateStream(context.Background(), ss)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("replay after Reset diverged: %+v vs %+v", first, second)
	}
}

func TestSimulatorReset(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := shardTrace(rng, 4000)
	for _, policy := range []cache.Policy{cache.FIFO, cache.LRU, cache.Random} {
		sim := mustSim(mustCfg(32, 4, 8), policy)
		first, err := sim.Simulate(tr.NewSliceReader())
		if err != nil {
			t.Fatal(err)
		}
		sim.Reset()
		second, err := sim.Simulate(tr.NewSliceReader())
		if err != nil {
			t.Fatal(err)
		}
		if first != second {
			t.Errorf("%v: replay after Reset diverged: %+v vs %+v", policy, first, second)
		}
	}
}

func TestShardedStreamMismatch(t *testing.T) {
	tr := trace.Trace{{Addr: 0}, {Addr: 64}}
	bs, _ := tr.BlockStream(4)
	ss, _ := trace.ShardBlockStream(bs, 1)
	sh, err := NewSharded(mustCfg(8, 1, 4), cache.FIFO, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.SimulateStream(context.Background(), ss); err == nil {
		t.Error("want shard-level mismatch error")
	}
	sh8, err := NewSharded(mustCfg(8, 1, 8), cache.FIFO, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh8.SimulateStream(context.Background(), ss); err == nil {
		t.Error("want block-size mismatch error")
	}
}
