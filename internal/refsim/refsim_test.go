package refsim

import (
	"math/rand"
	"testing"

	"dew/internal/cache"
	"dew/internal/trace"
)

// naiveCache is an independent, obviously-correct model used as an oracle
// for the optimized Simulator: each set is a plain slice of tags in
// insertion order (FIFO) or recency order (LRU).
type naiveCache struct {
	cfg    cache.Config
	policy cache.Policy
	sets   map[uint64][]uint64
}

func newNaive(cfg cache.Config, policy cache.Policy) *naiveCache {
	return &naiveCache{cfg: cfg, policy: policy, sets: map[uint64][]uint64{}}
}

func (n *naiveCache) access(addr uint64) bool {
	set := n.cfg.Index(addr)
	tag := n.cfg.Tag(addr)
	ways := n.sets[set]
	for i, t := range ways {
		if t == tag {
			if n.policy == cache.LRU {
				// Move to the most-recent end.
				ways = append(append(append([]uint64{}, ways[:i]...), ways[i+1:]...), tag)
				n.sets[set] = ways
			}
			return true
		}
	}
	ways = append(ways, tag)
	if len(ways) > n.cfg.Assoc {
		ways = ways[1:] // evict the oldest / least recent
	}
	n.sets[set] = ways
	return false
}

func randomTrace(n int, addrSpace int64, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := make(trace.Trace, n)
	for i := range t {
		t[i] = trace.Access{Addr: uint64(rng.Int63n(addrSpace)), Kind: trace.Kind(rng.Intn(3))}
	}
	return t
}

func TestFIFOHandSequence(t *testing.T) {
	// S=1, A=2, B=1. FIFO evicts in insertion order regardless of hits.
	cfg := mustCfg(1, 2, 1)
	s := mustSim(cfg, cache.FIFO)
	steps := []struct {
		addr    uint64
		wantHit bool
	}{
		{10, false}, // [10]
		{20, false}, // [10 20]
		{10, true},  // hit; order unchanged
		{30, false}, // evict 10 -> [30 20]
		{10, false}, // evict 20 -> [30 10]
		{30, true},
		{10, true},
		{20, false}, // evict 30 -> [20 10]
		{30, false}, // evict 10 -> [20 30]
		{20, true},
	}
	for i, st := range steps {
		if got := s.Access(trace.Access{Addr: st.addr}); got != st.wantHit {
			t.Fatalf("step %d (addr %d): hit = %v, want %v", i, st.addr, got, st.wantHit)
		}
	}
	stats := s.Stats()
	if stats.Accesses != 10 || stats.Misses != 6 {
		t.Errorf("stats = %d accesses / %d misses, want 10/6", stats.Accesses, stats.Misses)
	}
	if stats.CompulsoryMisses != 3 {
		t.Errorf("compulsory = %d, want 3 (blocks 10, 20, 30)", stats.CompulsoryMisses)
	}
	if stats.Evictions != 4 {
		t.Errorf("evictions = %d, want 4", stats.Evictions)
	}
}

func TestLRUHandSequence(t *testing.T) {
	// Same S=1, A=2 cache under LRU: the A B A C A pattern where LRU
	// beats FIFO.
	cfg := mustCfg(1, 2, 1)
	fifo := mustSim(cfg, cache.FIFO)
	lru := mustSim(cfg, cache.LRU)
	seq := []uint64{1, 2, 1, 3, 1}
	for _, a := range seq {
		fifo.Access(trace.Access{Addr: a})
		lru.Access(trace.Access{Addr: a})
	}
	if got := fifo.Stats().Misses; got != 4 {
		t.Errorf("FIFO misses = %d, want 4", got)
	}
	if got := lru.Stats().Misses; got != 3 {
		t.Errorf("LRU misses = %d, want 3", got)
	}
}

func TestAgainstNaiveOracle(t *testing.T) {
	configs := []cache.Config{
		mustCfg(1, 1, 1),
		mustCfg(1, 4, 4),
		mustCfg(4, 1, 2),
		mustCfg(8, 2, 4),
		mustCfg(16, 4, 8),
		mustCfg(2, 8, 16),
		mustCfg(64, 16, 32),
	}
	for _, policy := range []cache.Policy{cache.FIFO, cache.LRU} {
		for _, cfg := range configs {
			for seed := int64(0); seed < 3; seed++ {
				tr := randomTrace(5000, 4096, seed)
				sim := mustSim(cfg, policy)
				oracle := newNaive(cfg, policy)
				for i, a := range tr {
					got := sim.Access(a)
					want := oracle.access(a.Addr)
					if got != want {
						t.Fatalf("%v %v seed %d access %d (addr %#x): sim hit=%v oracle hit=%v",
							policy, cfg, seed, i, a.Addr, got, want)
					}
				}
			}
		}
	}
}

func TestCompulsoryMatchesUniqueBlocks(t *testing.T) {
	tr := randomTrace(20000, 1<<16, 7)
	for _, cfg := range []cache.Config{
		mustCfg(4, 2, 4),
		mustCfg(256, 4, 32),
	} {
		stats, err := RunTrace(cfg, cache.FIFO, tr)
		if err != nil {
			t.Fatal(err)
		}
		p, err := trace.ProfileReader(tr.NewSliceReader(), cfg.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		if stats.CompulsoryMisses != p.UniqueBlocks {
			t.Errorf("%v: compulsory %d != unique blocks %d", cfg, stats.CompulsoryMisses, p.UniqueBlocks)
		}
		if stats.Misses < stats.CompulsoryMisses {
			t.Errorf("%v: misses %d < compulsory %d", cfg, stats.Misses, stats.CompulsoryMisses)
		}
	}
}

func TestPerKindCounts(t *testing.T) {
	tr := trace.Trace{
		{Addr: 0, Kind: trace.DataRead},
		{Addr: 64, Kind: trace.DataWrite},
		{Addr: 0, Kind: trace.IFetch},
		{Addr: 0, Kind: trace.DataRead},
	}
	cfg := mustCfg(1, 2, 64)
	stats, err := RunTrace(cfg, cache.FIFO, tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AccessesByKind[trace.DataRead] != 2 ||
		stats.AccessesByKind[trace.DataWrite] != 1 ||
		stats.AccessesByKind[trace.IFetch] != 1 {
		t.Errorf("per-kind accesses = %v", stats.AccessesByKind)
	}
	// Misses: 0 (cold), 64 (cold); the ifetch and second read hit.
	if stats.Misses != 2 {
		t.Errorf("misses = %d, want 2", stats.Misses)
	}
	if stats.MissesByKind[trace.DataRead] != 1 || stats.MissesByKind[trace.DataWrite] != 1 {
		t.Errorf("per-kind misses = %v", stats.MissesByKind)
	}
}

// LRU obeys inclusion in both set count and associativity — the property
// DEW's related work exploits and FIFO lacks.
func TestLRUInclusion(t *testing.T) {
	tr := randomTrace(30000, 1<<14, 11)
	missesAt := func(sets, assoc int) uint64 {
		stats, err := RunTrace(mustCfg(sets, assoc, 4), cache.LRU, tr)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Misses
	}
	for _, assoc := range []int{1, 2, 4} {
		prev := missesAt(1, assoc)
		for _, sets := range []int{2, 4, 8, 16, 32} {
			cur := missesAt(sets, assoc)
			if cur > prev {
				t.Errorf("LRU misses increased from %d to %d going to %d sets (assoc %d)", prev, cur, sets, assoc)
			}
			prev = cur
		}
	}
	for _, sets := range []int{1, 4, 16} {
		prev := missesAt(sets, 1)
		for _, assoc := range []int{2, 4, 8} {
			cur := missesAt(sets, assoc)
			if cur > prev {
				t.Errorf("LRU misses increased from %d to %d going to assoc %d (%d sets)", prev, cur, assoc, sets)
			}
			prev = cur
		}
	}
}

// FIFO violates inclusion: there must exist an access that hits in a
// smaller cache but misses in a larger one. This is the paper's central
// premise (Section 1: "caches with the FIFO policy do not exhibit
// inclusion properties"), and it is why DEW cannot prune like LRU
// simulators do.
func TestFIFONonInclusion(t *testing.T) {
	small := mustCfg(1, 2, 1)
	big := mustCfg(2, 2, 1)
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		tr := randomTrace(2000, 8, seed)
		s1 := mustSim(small, cache.FIFO)
		s2 := mustSim(big, cache.FIFO)
		for _, a := range tr {
			h1 := s1.Access(a)
			h2 := s2.Access(a)
			if h1 && !h2 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no FIFO inclusion violation found; either FIFO is inclusive (wrong) or the search is too narrow")
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	tr := randomTrace(20000, 1<<12, 13)
	cfg := mustCfg(8, 4, 8)
	a, err := RunTrace(cfg, cache.Random, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrace(cfg, cache.Random, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Misses != b.Misses {
		t.Errorf("Random policy not deterministic: %d vs %d misses", a.Misses, b.Misses)
	}
	if a.Misses < a.CompulsoryMisses {
		t.Errorf("misses %d < compulsory %d", a.Misses, a.CompulsoryMisses)
	}
}

func TestTagComparisonAccounting(t *testing.T) {
	// S=1, A=4, B=1; fill with 1,2,3,4 then hit 3: search order is
	// physical for FIFO, so comparisons to hit 3 = 3.
	cfg := mustCfg(1, 4, 1)
	s := mustSim(cfg, cache.FIFO)
	for _, a := range []uint64{1, 2, 3, 4} {
		s.Access(trace.Access{Addr: a})
	}
	// Cold fills compare 0, 1, 2, 3 valid ways respectively = 6.
	if got := s.Stats().TagComparisons; got != 6 {
		t.Fatalf("comparisons after fills = %d, want 6", got)
	}
	s.Access(trace.Access{Addr: 3})
	if got := s.Stats().TagComparisons; got != 9 {
		t.Errorf("comparisons after hit on way 2 = %d, want 9", got)
	}
	// A miss on a full set compares all 4 ways.
	s.Access(trace.Access{Addr: 9})
	if got := s.Stats().TagComparisons; got != 13 {
		t.Errorf("comparisons after full-set miss = %d, want 13", got)
	}
}

func TestLRUSearchOrderAffectsComparisons(t *testing.T) {
	// Under LRU the most recently used block is compared first, so
	// re-hitting the MRU block costs exactly one comparison.
	cfg := mustCfg(1, 4, 1)
	s := mustSim(cfg, cache.LRU)
	for _, a := range []uint64{1, 2, 3, 4} {
		s.Access(trace.Access{Addr: a})
	}
	before := s.Stats().TagComparisons
	s.Access(trace.Access{Addr: 4}) // MRU
	if got := s.Stats().TagComparisons - before; got != 1 {
		t.Errorf("MRU re-hit cost %d comparisons, want 1", got)
	}
	s.Access(trace.Access{Addr: 1}) // now the LRU block: 4 comparisons
	if got := s.Stats().TagComparisons - before; got != 5 {
		t.Errorf("LRU-position hit cost %d total, want 5", got)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(cache.Config{Sets: 3, Assoc: 1, BlockSize: 1}, cache.FIFO); err == nil {
		t.Error("want error for non-power-of-two sets")
	}
	if _, err := New(cache.Config{Sets: 1, Assoc: 256, BlockSize: 1}, cache.LRU); err == nil {
		t.Error("want error for oversized associativity")
	}
}

func TestNewRejectsZeroConfig(t *testing.T) {
	if _, err := New(cache.Config{}, cache.FIFO); err == nil {
		t.Fatal("New accepted a zero Config")
	}
}

func TestSimulateReaderError(t *testing.T) {
	boom := trace.FuncReader(func() (trace.Access, error) {
		return trace.Access{}, errTest
	})
	s := mustSim(mustCfg(1, 1, 1), cache.FIFO)
	if _, err := s.Simulate(boom); err != errTest {
		t.Fatalf("err = %v, want errTest", err)
	}
}

var errTest = errorString("test error")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestAccessorMethods(t *testing.T) {
	cfg := mustCfg(4, 2, 8)
	s := mustSim(cfg, cache.LRU)
	if s.Config() != cfg {
		t.Error("Config mismatch")
	}
	if s.Policy() != cache.LRU {
		t.Error("Policy mismatch")
	}
}

// mustCfg builds a cache.Config test fixture, panicking on parameters
// that could only be wrong at authoring time.
func mustCfg(sets, assoc, blockSize int) cache.Config {
	c, err := cache.NewConfig(sets, assoc, blockSize)
	if err != nil {
		panic(err)
	}
	return c
}

// mustSim builds a Simulator test fixture, panicking on a config that
// could only be wrong at authoring time.
func mustSim(cfg cache.Config, policy cache.Policy) *Simulator {
	s, err := New(cfg, policy)
	if err != nil {
		panic(err)
	}
	return s
}
