package refsim

import (
	"fmt"
	"math/rand"
	"testing"

	"dew/internal/cache"
	"dew/internal/trace"
)

// streamTestTrace mixes runs (sequential fetch inside a block) with
// random jumps so both the fold and the walk paths are exercised.
func streamTestTrace(n int, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := make(trace.Trace, 0, n)
	var addr uint64
	for len(tr) < n {
		switch rng.Intn(3) {
		case 0: // sequential run
			for k := 0; k < 2+rng.Intn(10) && len(tr) < n; k++ {
				tr = append(tr, trace.Access{Addr: addr, Kind: trace.IFetch})
				addr += 4
			}
		case 1: // re-touch nearby
			addr = addr - uint64(rng.Intn(64))
			tr = append(tr, trace.Access{Addr: addr, Kind: trace.DataRead})
		default: // jump
			addr = uint64(rng.Intn(1 << 14))
			tr = append(tr, trace.Access{Addr: addr, Kind: trace.DataWrite})
		}
	}
	return tr
}

// assertKindFreeStatsEqual compares the statistics a block stream can
// reproduce (everything except the per-kind splits).
func assertKindFreeStatsEqual(t *testing.T, label string, want, got Stats) {
	t.Helper()
	if want.Accesses != got.Accesses {
		t.Errorf("%s: Accesses = %d, want %d", label, got.Accesses, want.Accesses)
	}
	if want.Misses != got.Misses {
		t.Errorf("%s: Misses = %d, want %d", label, got.Misses, want.Misses)
	}
	if want.CompulsoryMisses != got.CompulsoryMisses {
		t.Errorf("%s: CompulsoryMisses = %d, want %d", label, got.CompulsoryMisses, want.CompulsoryMisses)
	}
	if want.Evictions != got.Evictions {
		t.Errorf("%s: Evictions = %d, want %d", label, got.Evictions, want.Evictions)
	}
	if want.TagComparisons != got.TagComparisons {
		t.Errorf("%s: TagComparisons = %d, want %d", label, got.TagComparisons, want.TagComparisons)
	}
}

// TestSimulateStreamEquivalence proves the stream replay bit-identical
// to the trace replay for every policy across configurations, including
// the per-repeat tag-comparison fold.
func TestSimulateStreamEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		tr := streamTestTrace(12_000, seed)
		for _, policy := range []cache.Policy{cache.FIFO, cache.LRU, cache.Random} {
			for _, cfg := range []cache.Config{
				mustCfg(8, 4, 16),
				mustCfg(64, 2, 4),
				mustCfg(1, 8, 32),
				mustCfg(16, 1, 8),
			} {
				label := fmt.Sprintf("seed%d/%v/%v", seed, policy, cfg)
				bs, err := tr.BlockStream(cfg.BlockSize)
				if err != nil {
					t.Fatal(err)
				}
				want, err := RunTrace(cfg, policy, tr)
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunStream(cfg, policy, bs)
				if err != nil {
					t.Fatal(err)
				}
				assertKindFreeStatsEqual(t, label, want, got)
			}
		}
	}
}

// TestSimulateStreamRejects guards the two invalid replays: a stream at
// the wrong block size, and a write-policy simulator (which needs
// kinds).
func TestSimulateStreamRejects(t *testing.T) {
	bs, err := trace.Trace{{Addr: 0}}.BlockStream(16)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSim(mustCfg(4, 2, 32), cache.FIFO)
	if _, err := s.SimulateStream(bs); err == nil {
		t.Error("block-size mismatch accepted")
	}
	ws, err := NewSim(Options{Config: mustCfg(4, 2, 16), Replacement: cache.FIFO})
	if err != nil {
		t.Fatal(err)
	}
	bs16, err := trace.Trace{{Addr: 0}}.BlockStream(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.SimulateStream(bs16); err == nil {
		t.Error("write-policy simulator accepted a kind-free stream")
	}
}
