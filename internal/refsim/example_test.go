package refsim_test

import (
	"fmt"
	"log"

	"dew/internal/cache"
	"dew/internal/refsim"
	"dew/internal/trace"
)

// The reference simulator plays the Dinero IV role: one configuration
// per pass, full statistics.
func Example() {
	tr := trace.Trace{
		{Addr: 0, Kind: trace.DataRead},
		{Addr: 64, Kind: trace.DataRead},
		{Addr: 0, Kind: trace.DataRead},
		{Addr: 128, Kind: trace.DataWrite},
		{Addr: 64, Kind: trace.DataRead},
	}
	stats, err := refsim.RunTrace(cache.Config{Sets: 1, Assoc: 2, BlockSize: 64}, cache.FIFO, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accesses:", stats.Accesses)
	fmt.Println("misses:", stats.Misses, "compulsory:", stats.CompulsoryMisses)
	fmt.Println("tag comparisons:", stats.TagComparisons)
	// Output:
	// accesses: 5
	// misses: 3 compulsory: 3
	// tag comparisons: 6
}

// Write policies add Dinero-style memory-traffic accounting.
func ExampleNewSim() {
	sim, err := refsim.NewSim(refsim.Options{
		Config:      cache.Config{Sets: 1, Assoc: 1, BlockSize: 16},
		Replacement: cache.FIFO,
		Write:       refsim.WriteBack,
		Alloc:       refsim.WriteAllocate,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Access(trace.Access{Addr: 0, Kind: trace.DataWrite}) // fill + dirty
	sim.Access(trace.Access{Addr: 16, Kind: trace.DataRead}) // evicts dirty block
	t := sim.Traffic()
	fmt.Println("bytes from memory:", t.BytesFromMemory)
	fmt.Println("bytes to memory:", t.BytesToMemory, "writebacks:", t.Writebacks)
	// Output:
	// bytes from memory: 32
	// bytes to memory: 16 writebacks: 1
}
