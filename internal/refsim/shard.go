package refsim

import (
	"context"
	"fmt"
	"runtime"

	"dew/internal/cache"
	"dew/internal/pool"
	"dew/internal/trace"
)

// Sharded is one reference simulation decomposed for intra-pass
// parallelism at shard level S, the refsim counterpart of core.Sharded:
// a configuration with 2^L sets (L ≥ S) is the disjoint union of 2^S
// sub-caches — sub-cache t holds exactly the sets whose index is
// congruent to t mod 2^S — and shard t of a trace.ShardStream carries
// exactly the accesses that touch sub-cache t, in order. Each sub-cache
// therefore replays its own substream on its own goroutine as a plain
// Simulator with 2^(L-S) sets at block size B·2^S: with the shard's IDs
// pre-shifted by S (see trace.ShardStream), a shifted ID sid indexes
// sub-set sid mod 2^(L-S) and carries tag sid >> (L-S) — precisely the
// set and tag the monolithic simulator derives from the parent ID.
//
// The decomposition is exact for FIFO and LRU, whose replacement state
// is strictly per-set: every statistic the stream replay maintains
// (Accesses, Misses, CompulsoryMisses, Evictions, TagComparisons) is a
// sum of per-set contributions, so summing the sub-simulators
// reproduces the monolithic pass bit for bit. cache.Random shares one
// deterministic replacement stream across all sets, so splitting the
// replay would reorder its draws; Random configurations (and those with
// fewer than 2^S sets, where sets do not decompose along shard lines)
// fall back to replaying the parent stream monolithically — Sharded
// reports which way it went via Parallel.
type Sharded struct {
	cfg     cache.Config
	policy  cache.Policy
	log     int
	workers int

	// subs holds the 2^S sub-simulators of the parallel decomposition;
	// nil when the pass falls back to the monolithic replay.
	subs []*Simulator
	// whole is the fallback monolithic simulator; nil when subs is set.
	whole *Simulator

	stats   Stats
	traffic Traffic
}

// NewSharded builds a sharded reference pass for the configuration and
// policy at shard level log. workers bounds the goroutines replaying
// substreams; 0 means GOMAXPROCS. Configurations with at least 2^log
// sets under FIFO or LRU replay shard substreams in parallel; anything
// else keeps the exact monolithic replay as a fallback (see the type
// comment).
func NewSharded(cfg cache.Config, policy cache.Policy, log, workers int) (*Sharded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if log < 0 {
		return nil, fmt.Errorf("refsim: negative shard level %d", log)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sh := &Sharded{cfg: cfg, policy: policy, log: log, workers: workers}
	if policy != cache.Random && log <= 30 && cfg.Sets>>uint(log) >= 1 {
		subCfg, err := cache.NewConfig(cfg.Sets>>uint(log), cfg.Assoc, cfg.BlockSize<<uint(log))
		if err != nil {
			return nil, err
		}
		sh.subs = make([]*Simulator, 1<<log)
		for t := range sh.subs {
			if sh.subs[t], err = New(subCfg, policy); err != nil {
				return nil, err
			}
		}
	} else {
		var err error
		if sh.whole, err = New(cfg, policy); err != nil {
			return nil, err
		}
	}
	return sh, nil
}

// NewShardedSim is NewSharded for a fully-parameterized (write-policy)
// reference pass: each sub-simulator is built with NewSim, so the
// sharded replay keeps dirty bits, per-kind statistics and memory
// traffic. The decomposition stays exact: dirty bits live per way of a
// single set, the seen map partitions by block, and every traffic
// counter is a sum of per-set contributions. The sub-simulators run at
// the widened shard block size, which is an addressing trick rather
// than a longer line, so their fill and writeback traffic is charged at
// the parent block size.
func NewShardedSim(o Options, log, workers int) (*Sharded, error) {
	if err := o.Config.Validate(); err != nil {
		return nil, err
	}
	if log < 0 {
		return nil, fmt.Errorf("refsim: negative shard level %d", log)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sh := &Sharded{cfg: o.Config, policy: o.Replacement, log: log, workers: workers}
	if o.Replacement != cache.Random && log <= 30 && o.Config.Sets>>uint(log) >= 1 {
		subCfg, err := cache.NewConfig(o.Config.Sets>>uint(log), o.Config.Assoc, o.Config.BlockSize<<uint(log))
		if err != nil {
			return nil, err
		}
		sub := o
		sub.Config = subCfg
		sh.subs = make([]*Simulator, 1<<log)
		for t := range sh.subs {
			if sh.subs[t], err = NewSim(sub); err != nil {
				return nil, err
			}
			sh.subs[t].fillBytes = o.Config.BlockSize
		}
	} else {
		var err error
		if sh.whole, err = NewSim(o); err != nil {
			return nil, err
		}
	}
	return sh, nil
}

// Config returns the simulated configuration.
func (sh *Sharded) Config() cache.Config { return sh.cfg }

// ShardLog returns the shard level S the pass was built for.
func (sh *Sharded) ShardLog() int { return sh.log }

// Policy returns the replacement policy.
func (sh *Sharded) Policy() cache.Policy { return sh.policy }

// Parallel reports whether the pass replays shard substreams in
// parallel (true) or fell back to the monolithic parent replay.
func (sh *Sharded) Parallel() bool { return sh.subs != nil }

// Stats returns the stitched statistics of the replays so far.
func (sh *Sharded) Stats() Stats { return sh.stats }

// Traffic returns the stitched memory-traffic counters; zero unless the
// pass was built with NewShardedSim.
func (sh *Sharded) Traffic() Traffic { return sh.traffic }

// Reset returns the pass to its freshly constructed state.
func (sh *Sharded) Reset() {
	if sh.whole != nil {
		sh.whole.Reset()
	}
	for _, sub := range sh.subs {
		sub.Reset()
	}
	sh.stats = Stats{}
	sh.traffic = Traffic{}
}

// SimulateStream replays a sharded block stream: each sub-simulator
// replays its shard substream across the worker pool and the
// statistics are summed; the fallback replays the parent stream. The
// shard stream must be partitioned at this pass's shard level and
// materialized at its block size. Results are bit-identical to
// Simulator.SimulateStream over the parent stream. Like that entry
// point, repeated calls continue the pass (chunked replays accumulate).
//
// Cancelling ctx stops claiming sub-cache replays (each sub-cache is
// one task) and returns ctx's error with the pool drained; the pass
// state is then inconsistent — Reset before reusing it. A panic inside
// a replay surfaces as a *pool.PanicError instead of crashing the
// process.
func (sh *Sharded) SimulateStream(ctx context.Context, ss *trace.ShardStream) (Stats, error) {
	if ss.Log != sh.log {
		return sh.stats, fmt.Errorf("refsim: stream sharded at level %d, pass expects %d", ss.Log, sh.log)
	}
	if ss.BlockSize != sh.cfg.BlockSize {
		return sh.stats, fmt.Errorf("refsim: stream materialized at block size %d, configuration uses %d",
			ss.BlockSize, sh.cfg.BlockSize)
	}
	if sh.whole != nil {
		if err := ctx.Err(); err != nil {
			return sh.stats, err
		}
		stats, err := sh.whole.SimulateStream(ss.Source)
		sh.stats = stats
		sh.traffic = sh.whole.Traffic()
		return sh.stats, err
	}
	if ss.NumShards() != len(sh.subs) {
		return sh.stats, fmt.Errorf("refsim: stream has %d shards, pass has %d sub-caches", ss.NumShards(), len(sh.subs))
	}

	if err := pool.Run(ctx, sh.workers, len(sh.subs), func(t int) error {
		_, err := sh.subs[t].SimulateStream(&ss.Shards[t])
		return err
	}); err != nil {
		return sh.stats, err
	}

	// Stitch: every stream-replay statistic is a sum of per-set
	// contributions and the sub-caches partition the sets. The
	// sub-simulators' stats are cumulative across replays, so the
	// stitch recomputes from scratch.
	var total Stats
	var traffic Traffic
	for _, sub := range sh.subs {
		st := sub.Stats()
		total.Accesses += st.Accesses
		total.Misses += st.Misses
		total.CompulsoryMisses += st.CompulsoryMisses
		total.Evictions += st.Evictions
		total.TagComparisons += st.TagComparisons
		for k := range st.AccessesByKind {
			total.AccessesByKind[k] += st.AccessesByKind[k]
			total.MissesByKind[k] += st.MissesByKind[k]
		}
		tr := sub.Traffic()
		traffic.BytesFromMemory += tr.BytesFromMemory
		traffic.BytesToMemory += tr.BytesToMemory
		traffic.Writebacks += tr.Writebacks
	}
	sh.stats = total
	sh.traffic = traffic
	return sh.stats, nil
}

// RunSharded builds a sharded pass matching the stream's shard level,
// replays the stream and returns the final statistics.
func RunSharded(ctx context.Context, cfg cache.Config, policy cache.Policy, ss *trace.ShardStream, workers int) (Stats, error) {
	sh, err := NewSharded(cfg, policy, ss.Log, workers)
	if err != nil {
		return Stats{}, err
	}
	return sh.SimulateStream(ctx, ss)
}
