package refsim

import (
	"fmt"

	"dew/internal/cache"
	"dew/internal/trace"
)

// SimulateStream replays a run-length-compressed block stream and
// returns the final statistics. The stream must have been materialized
// at the simulator's block size; the simulator then consumes block IDs
// directly, with no per-access address decode, and folds run weights
// arithmetically — the same sharing the multi-configuration simulators
// exploit, kept available here so the reference baseline can replay the
// identical stream the DEW pass consumed.
//
// Folding is exact for the kind-free statistics: every access after the
// first of a run re-requests the block the previous access just made
// resident, so it hits, changes no replacement state (FIFO and Random
// do nothing on hits; the LRU touch re-asserts an already-MRU block),
// and costs a deterministic number of tag comparisons — one under LRU
// (the block sits at the head of the recency-ordered search), and
// way+1 under FIFO/Random's physical-order search, where way is where
// the head access left the block. Accesses, Misses, CompulsoryMisses,
// Evictions and TagComparisons are therefore bit-identical to replaying
// the expanded trace.
//
// A BlockStream carries no request kinds, so AccessesByKind and
// MissesByKind stay zero, and write-policy simulators (built with
// NewSim), whose store handling must see kinds, reject the stream.
func (s *Simulator) SimulateStream(bs *trace.BlockStream) (Stats, error) {
	if bs.BlockSize != s.cfg.BlockSize {
		return s.stats, fmt.Errorf("refsim: stream materialized at block size %d, configuration uses %d",
			bs.BlockSize, s.cfg.BlockSize)
	}
	if s.dirty != nil {
		return s.stats, fmt.Errorf("refsim: write-policy simulation needs per-kind accesses; replay the raw trace")
	}
	setMask := s.cfg.Sets - 1
	idxBits := uint(s.cfg.IndexBits())
	lru := s.policy == cache.LRU
	for i, blk := range bs.IDs {
		w := bs.Runs[i]
		if w == 0 {
			continue
		}
		set := int(blk) & setMask
		tag := blk >> idxBits

		s.stats.Accesses++
		way := s.findWay(set, tag)
		if way >= 0 {
			if lru {
				s.touchLRU(set, way)
			}
		} else {
			s.stats.Misses++
			if _, ok := s.seen[blk]; !ok {
				s.seen[blk] = struct{}{}
				s.stats.CompulsoryMisses++
			}
			way = s.insert(set, tag)
		}

		if w > 1 {
			rest := uint64(w - 1)
			s.stats.Accesses += rest
			if lru {
				// The block is MRU after the head access: each repeat's
				// recency-ordered search hits on the first probe, and
				// the MRU rotation is a no-op.
				s.stats.TagComparisons += rest
			} else {
				// Physical-order search stops at the block's way.
				s.stats.TagComparisons += rest * uint64(way+1)
			}
		}
	}
	return s.stats, nil
}

// RunStream builds a Simulator and replays the stream through it.
func RunStream(cfg cache.Config, policy cache.Policy, bs *trace.BlockStream) (Stats, error) {
	s, err := New(cfg, policy)
	if err != nil {
		return Stats{}, err
	}
	return s.SimulateStream(bs)
}
