package refsim

import (
	"fmt"

	"dew/internal/cache"
	"dew/internal/trace"
)

// SimulateStream replays a run-length-compressed block stream and
// returns the final statistics. The stream must have been materialized
// at the simulator's block size; the simulator then consumes block IDs
// directly, with no per-access address decode, and folds run weights
// arithmetically — the same sharing the multi-configuration simulators
// exploit, kept available here so the reference baseline can replay the
// identical stream the DEW pass consumed.
//
// Folding is exact for the kind-free statistics: every access after the
// first of a run re-requests the block the previous access just made
// resident, so it hits, changes no replacement state (FIFO and Random
// do nothing on hits; the LRU touch re-asserts an already-MRU block),
// and costs a deterministic number of tag comparisons — one under LRU
// (the block sits at the head of the recency-ordered search), and
// way+1 under FIFO/Random's physical-order search, where way is where
// the head access left the block. Accesses, Misses, CompulsoryMisses,
// Evictions and TagComparisons are therefore bit-identical to replaying
// the expanded trace.
//
// A kind-free BlockStream carries no request kinds, so AccessesByKind
// and MissesByKind stay zero on that path, and write-policy simulators
// (built with NewSim), whose store handling must see kinds, reject it.
// A kind-preserving stream (trace.MaterializeBlockStreamWithKinds)
// replays through the kind-aware fold instead: per-kind statistics are
// maintained, and write-policy simulators fold each run exactly under
// their write/alloc policies (see simulateKindStream).
func (s *Simulator) SimulateStream(bs *trace.BlockStream) (Stats, error) {
	if bs.BlockSize != s.cfg.BlockSize {
		return s.stats, fmt.Errorf("refsim: stream materialized at block size %d, configuration uses %d",
			bs.BlockSize, s.cfg.BlockSize)
	}
	if bs.HasKinds() {
		return s.simulateKindStream(bs)
	}
	if s.dirty != nil {
		return s.stats, fmt.Errorf("refsim: write-policy simulation needs a kind-preserving stream (materialize with kinds) or the raw trace")
	}
	setMask := s.cfg.Sets - 1
	idxBits := uint(s.cfg.IndexBits())
	lru := s.policy == cache.LRU
	for i, blk := range bs.IDs {
		w := bs.Runs[i]
		if w == 0 {
			continue
		}
		set := int(blk) & setMask
		tag := blk >> idxBits

		s.stats.Accesses++
		way := s.findWay(set, tag)
		if way >= 0 {
			if lru {
				s.touchLRU(set, way)
			}
		} else {
			s.stats.Misses++
			if _, ok := s.seen[blk]; !ok {
				s.seen[blk] = struct{}{}
				s.stats.CompulsoryMisses++
			}
			way = s.insert(set, tag)
		}

		if w > 1 {
			rest := uint64(w - 1)
			s.stats.Accesses += rest
			if lru {
				// The block is MRU after the head access: each repeat's
				// recency-ordered search hits on the first probe, and
				// the MRU rotation is a no-op.
				s.stats.TagComparisons += rest
			} else {
				// Physical-order search stops at the block's way.
				s.stats.TagComparisons += rest * uint64(way+1)
			}
		}
	}
	return s.stats, nil
}

// simulateKindStream replays a kind-preserving stream, folding each run
// exactly under the simulator's policies. The fold extends the kind-free
// argument: within a run every access touches one block, and once any
// access installs it the block stays resident for the rest of the run,
// so a run's per-access outcome is fully determined by its KindRun
// record — the per-kind weights plus the leading-store count and first
// non-store kind (see trace.KindRun). Three shapes cover every
// WritePolicy × AllocPolicy combination:
//
//   - Resident at the head: every access hits. Stores mark the dirty
//     bit (write-back) or each send storeBytes to memory
//     (write-through).
//   - Installing miss (write-allocate, or the run opens with a
//     non-store): the first access misses, fills and installs; the rest
//     hit, with the same repeat tag-comparison costs as the kind-free
//     fold.
//   - Bypassing miss (no-write-allocate and the run opens with stores):
//     each of the Lead leading stores misses and bypasses without
//     installing, re-scanning the set; the first non-store (if any)
//     misses, fills and installs; the remainder hits.
//
// The results — every statistic and the traffic counters — are
// bit-identical to replaying the expanded per-access trace through
// Access.
func (s *Simulator) simulateKindStream(bs *trace.BlockStream) (Stats, error) {
	setMask := s.cfg.Sets - 1
	idxBits := uint(s.cfg.IndexBits())
	lru := s.policy == cache.LRU
	for i, blk := range bs.IDs {
		w := bs.Runs[i]
		if w == 0 {
			continue
		}
		kr := bs.Kinds[i]
		set := int(blk) & setMask
		tag := blk >> idxBits

		s.stats.Accesses += uint64(w)
		for k := range kr.W {
			s.stats.AccessesByKind[k] += uint64(kr.W[k])
		}

		if s.dirty == nil {
			// No write policies in play: the kind-free fold plus per-kind
			// miss attribution (only the head access can miss, and its
			// kind is the record's first).
			way := s.findWay(set, tag)
			if way >= 0 {
				if lru {
					s.touchLRU(set, way)
				}
			} else {
				s.stats.Misses++
				s.stats.MissesByKind[kr.FirstKind()]++
				if _, ok := s.seen[blk]; !ok {
					s.seen[blk] = struct{}{}
					s.stats.CompulsoryMisses++
				}
				way = s.insert(set, tag)
			}
			if w > 1 {
				rest := uint64(w - 1)
				if lru {
					s.stats.TagComparisons += rest
				} else {
					s.stats.TagComparisons += rest * uint64(way+1)
				}
			}
			continue
		}

		writes := uint64(kr.W[trace.DataWrite])
		base := set * s.cfg.Assoc
		way := s.findWay(set, tag)
		if way >= 0 {
			// Resident: the whole run hits.
			if lru {
				s.touchLRU(set, way)
			}
			if w > 1 {
				rest := uint64(w - 1)
				if lru {
					s.stats.TagComparisons += rest
				} else {
					s.stats.TagComparisons += rest * uint64(way+1)
				}
			}
			if writes > 0 {
				if s.write == WriteBack {
					s.dirty[base+way] = true
				} else {
					s.traffic.BytesToMemory += writes * uint64(s.storeBytes)
				}
			}
			continue
		}

		if s.alloc == NoWriteAllocate && kr.FirstKind() == trace.DataWrite {
			// Bypassing miss: the Lead leading stores each miss without
			// installing. Only the first can be compulsory; each re-scan
			// of the unchanged set costs the same comparisons findWay
			// just counted.
			lead := uint64(kr.Lead)
			s.stats.Misses += lead
			s.stats.MissesByKind[trace.DataWrite] += lead
			if _, ok := s.seen[blk]; !ok {
				s.seen[blk] = struct{}{}
				s.stats.CompulsoryMisses++
			}
			s.traffic.BytesToMemory += lead * uint64(s.storeBytes)
			fillCount := uint64(s.fill[set])
			s.stats.TagComparisons += (lead - 1) * fillCount
			if kr.AllWrites() {
				continue // nothing installs; the block stays cold
			}
			// The first non-store scans, misses and installs.
			s.stats.TagComparisons += fillCount
			s.stats.Misses++
			s.stats.MissesByKind[kr.First]++
			s.traffic.BytesFromMemory += uint64(s.fillBytes)
			way = s.insertAt(set, tag)
			if rest := uint64(w) - lead - 1; rest > 0 {
				if lru {
					s.stats.TagComparisons += rest
				} else {
					s.stats.TagComparisons += rest * uint64(way+1)
				}
			}
			// Stores after the install hit the now-resident block.
			if remWrites := writes - lead; remWrites > 0 {
				if s.write == WriteBack {
					s.dirty[base+way] = true
				} else {
					s.traffic.BytesToMemory += remWrites * uint64(s.storeBytes)
				}
			}
			continue
		}

		// Installing miss: the head access misses, fills and installs;
		// the rest of the run hits.
		s.stats.Misses++
		s.stats.MissesByKind[kr.FirstKind()]++
		if _, ok := s.seen[blk]; !ok {
			s.seen[blk] = struct{}{}
			s.stats.CompulsoryMisses++
		}
		s.traffic.BytesFromMemory += uint64(s.fillBytes)
		way = s.insertAt(set, tag)
		if w > 1 {
			rest := uint64(w - 1)
			if lru {
				s.stats.TagComparisons += rest
			} else {
				s.stats.TagComparisons += rest * uint64(way+1)
			}
		}
		if writes > 0 {
			if s.write == WriteBack {
				s.dirty[base+way] = true
			} else {
				s.traffic.BytesToMemory += writes * uint64(s.storeBytes)
			}
		}
	}
	return s.stats, nil
}

// RunStream builds a Simulator and replays the stream through it.
func RunStream(cfg cache.Config, policy cache.Policy, bs *trace.BlockStream) (Stats, error) {
	s, err := New(cfg, policy)
	if err != nil {
		return Stats{}, err
	}
	return s.SimulateStream(bs)
}
