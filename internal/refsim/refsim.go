// Package refsim is a trace-driven single-configuration cache simulator
// in the role Dinero IV plays in the DEW paper: the exact, widely-trusted
// baseline that simulates one (sets, associativity, block size, policy)
// combination per pass and keeps the full Dinero-style statistics set
// (per-kind counts, compulsory-miss classification, eviction counts, tag
// comparisons).
//
// It is deliberately policy-general (FIFO, LRU, Random) and
// configuration-general where DEW is specialized; the experiment harness
// replays the trace through one Simulator per configuration exactly as
// the paper ran Dinero IV once per configuration, and the DEW test suite
// uses it as the exactness oracle.
package refsim

import (
	"fmt"

	"dew/internal/cache"
	"dew/internal/trace"
)

// Stats is the full statistics record of one simulation, a superset of
// cache.Stats modeled on Dinero IV's output. Maintaining this "large
// information set" is part of what the paper charges to Dinero's runtime;
// keeping it here keeps the comparison honest.
type Stats struct {
	cache.Stats

	// Per-kind access and miss counts (indexed by trace.Kind).
	AccessesByKind [3]uint64
	MissesByKind   [3]uint64

	// CompulsoryMisses counts first-ever references to a block (cold
	// misses). The remainder of Misses are capacity/conflict misses.
	CompulsoryMisses uint64

	// Evictions counts valid blocks displaced by fills.
	Evictions uint64

	// TagComparisons counts every tag equality test performed while
	// searching sets — the cost metric Table 3 of the paper reports.
	TagComparisons uint64
}

// Simulator simulates a single cache configuration over a stream of
// accesses.
type Simulator struct {
	cfg    cache.Config
	policy cache.Policy

	// tags holds Sets×Assoc entries; tags[s*assoc+w] is way w of set s.
	tags  []uint64
	valid []bool
	// fill is the number of valid ways per set.
	fill []int32
	// head is the FIFO round-robin insertion cursor per set.
	head []int32
	// order holds the LRU recency permutation per set: order[s*assoc+i]
	// is the way index of the i-th most recently used block.
	order []int8

	// seen records every block address ever referenced, for
	// compulsory-miss classification (Dinero keeps the same structure).
	seen map[uint64]struct{}

	// rnd is the deterministic replacement stream for cache.Random.
	rnd uint64

	// Write-policy state, active only for simulators built with NewSim
	// (dirty non-nil): see write.go.
	write      WritePolicy
	alloc      AllocPolicy
	storeBytes int
	// fillBytes is the memory-traffic cost of one block fill or dirty
	// writeback. Normally cfg.BlockSize; a sharded sub-simulator runs at
	// a widened block size that is an addressing trick, so NewShardedSim
	// overrides it with the parent block size.
	fillBytes int
	dirty     []bool
	traffic   Traffic

	stats Stats
}

// New returns a Simulator for the configuration and policy. The
// configuration must validate, and associativity must fit the internal
// recency encoding (≤ 127, far beyond the paper's 16).
func New(cfg cache.Config, policy cache.Policy) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Assoc > 127 {
		return nil, fmt.Errorf("refsim: associativity %d exceeds supported 127", cfg.Assoc)
	}
	n := cfg.Sets * cfg.Assoc
	s := &Simulator{
		cfg:       cfg,
		policy:    policy,
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		fill:      make([]int32, cfg.Sets),
		head:      make([]int32, cfg.Sets),
		seen:      make(map[uint64]struct{}),
		rnd:       0x9E3779B97F4A7C15,
		fillBytes: cfg.BlockSize,
	}
	if policy == cache.LRU {
		s.order = make([]int8, n)
	}
	return s, nil
}

// Reset returns the simulator to its freshly constructed state —
// cold cache, empty reference history, zeroed statistics and a rewound
// random-replacement stream — reusing the allocated arenas so a
// build-once-replay-many loop settles into zero steady-state
// allocations (the map of seen blocks is cleared, not reallocated).
func (s *Simulator) Reset() {
	clear(s.tags)
	clear(s.valid)
	clear(s.fill)
	clear(s.head)
	clear(s.order)
	clear(s.seen)
	clear(s.dirty)
	s.rnd = 0x9E3779B97F4A7C15
	s.traffic = Traffic{}
	s.stats = Stats{}
}

// Config returns the simulated configuration.
func (s *Simulator) Config() cache.Config { return s.cfg }

// Policy returns the replacement policy.
func (s *Simulator) Policy() cache.Policy { return s.policy }

// Stats returns a snapshot of the accumulated statistics.
func (s *Simulator) Stats() Stats { return s.stats }

// Access simulates one memory request and reports whether it hit.
func (s *Simulator) Access(a trace.Access) bool {
	blk := s.cfg.BlockAddr(a.Addr)
	set := int(blk) & (s.cfg.Sets - 1)
	tag := blk >> uint(s.cfg.IndexBits())

	s.stats.Accesses++
	if a.Kind.Valid() {
		s.stats.AccessesByKind[a.Kind]++
	}

	// Stores follow the configured write/alloc policies when the
	// simulator was built with NewSim.
	if s.dirty != nil && a.Kind == trace.DataWrite {
		return s.accessWrite(set, tag, blk)
	}

	// Search every valid way, counting tag comparisons. For LRU the
	// search follows recency order (Dinero searches its recency-linked
	// list), for FIFO/Random physical order; the comparison count to a
	// hit differs accordingly.
	hitWay := s.findWay(set, tag)
	if hitWay >= 0 {
		if s.policy == cache.LRU {
			s.touchLRU(set, hitWay)
		}
		return true
	}

	// Miss path.
	s.stats.Misses++
	if a.Kind.Valid() {
		s.stats.MissesByKind[a.Kind]++
	}
	if _, ok := s.seen[blk]; !ok {
		s.seen[blk] = struct{}{}
		s.stats.CompulsoryMisses++
	}
	if s.dirty != nil {
		s.traffic.BytesFromMemory += uint64(s.fillBytes)
		s.insertAt(set, tag)
	} else {
		s.insert(set, tag)
	}
	return false
}

// touchLRU moves way w of the set to most-recently-used position.
func (s *Simulator) touchLRU(set, w int) {
	base := set * s.cfg.Assoc
	// Find w in the recency order and rotate it to the front.
	for i := 0; i < int(s.fill[set]); i++ {
		if int(s.order[base+i]) == w {
			copy(s.order[base+1:base+i+1], s.order[base:base+i])
			s.order[base] = int8(w)
			return
		}
	}
}

// insert places tag into the set, evicting per policy if full, and
// returns the way used (the stream replay folds repeat costs from it).
func (s *Simulator) insert(set int, tag uint64) int {
	base := set * s.cfg.Assoc
	assoc := s.cfg.Assoc

	if int(s.fill[set]) < assoc {
		// Cold fill: next free way.
		w := int(s.fill[set])
		s.tags[base+w] = tag
		s.valid[base+w] = true
		s.fill[set]++
		switch s.policy {
		case cache.LRU:
			copy(s.order[base+1:base+w+1], s.order[base:base+w])
			s.order[base] = int8(w)
		case cache.FIFO:
			// head tracks the oldest entry; while filling, oldest
			// remains way 0, and head stays pointing at it.
		}
		return w
	}

	// Choose a victim.
	var w int
	switch s.policy {
	case cache.FIFO:
		w = int(s.head[set])
		s.head[set] = int32((w + 1) % assoc)
	case cache.LRU:
		w = int(s.order[base+assoc-1])
		copy(s.order[base+1:base+assoc], s.order[base:base+assoc-1])
		s.order[base] = int8(w)
	case cache.Random:
		// xorshift64 step, deterministic across runs.
		s.rnd ^= s.rnd << 13
		s.rnd ^= s.rnd >> 7
		s.rnd ^= s.rnd << 17
		w = int(s.rnd % uint64(assoc))
	}
	s.stats.Evictions++
	s.tags[base+w] = tag
	return w
}

// Simulate drains the reader through the simulator and returns the final
// statistics. Reads are batched (trace.BatchReader), so a pass over an
// in-memory trace or a trace file pays one reader call per
// trace.DefaultBatchSize accesses; the per-access statistics are
// unchanged.
func (s *Simulator) Simulate(r trace.Reader) (Stats, error) {
	err := trace.Drain(r, func(batch []trace.Access) {
		for _, a := range batch {
			s.Access(a)
		}
	})
	return s.stats, err
}

// Run is a convenience that builds a Simulator and drains the reader.
func Run(cfg cache.Config, policy cache.Policy, r trace.Reader) (Stats, error) {
	s, err := New(cfg, policy)
	if err != nil {
		return Stats{}, err
	}
	return s.Simulate(r)
}

// RunTrace runs an in-memory trace (common in tests and benchmarks).
func RunTrace(cfg cache.Config, policy cache.Policy, t trace.Trace) (Stats, error) {
	return Run(cfg, policy, t.NewSliceReader())
}
