package refsim

import (
	"context"
	"errors"
	"testing"

	"dew/internal/cache"
	"dew/internal/leakcheck"
	"dew/internal/trace"
	"dew/internal/workload"
)

func cancelShardStream(t *testing.T, n int) *trace.ShardStream {
	t.Helper()
	tr := workload.CJPEG.Trace(1, n)
	ss, err := trace.IngestShards(context.Background(), tr.NewSliceReader(), 16, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func TestRunShardedCancelled(t *testing.T) {
	defer leakcheck.Check(t)()
	ss := cancelShardStream(t, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSharded(ctx, cache.Config{Sets: 64, Assoc: 2, BlockSize: 16}, cache.FIFO, ss, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSharded on cancelled ctx: %v, want context.Canceled", err)
	}
}

func TestSimulateStreamCancelled(t *testing.T) {
	defer leakcheck.Check(t)()
	ss := cancelShardStream(t, 20000)
	sh, err := NewSharded(cache.Config{Sets: 64, Assoc: 2, BlockSize: 16}, cache.FIFO, ss.Log, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sh.SimulateStream(ctx, ss); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateStream on cancelled ctx: %v, want context.Canceled", err)
	}
}
