package refsim

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dew/internal/cache"
	"dew/internal/trace"
	"dew/internal/workload"
)

// kindTestTrace builds a trace that exercises every run shape the kind
// replay folds: all-store bursts to fresh blocks (the no-write-allocate
// bypass), store-led runs that end in loads, fetch streaks and read
// retouches.
func kindTestTrace(n int, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := make(trace.Trace, 0, n)
	var addr uint64
	for len(tr) < n {
		switch rng.Intn(5) {
		case 0: // sequential fetch streak
			for k := 0; k < 2+rng.Intn(10) && len(tr) < n; k++ {
				tr = append(tr, trace.Access{Addr: addr, Kind: trace.IFetch})
				addr += 4
			}
		case 1: // read retouch nearby
			addr -= uint64(rng.Intn(64))
			tr = append(tr, trace.Access{Addr: addr, Kind: trace.DataRead})
		case 2: // store burst to a fresh block, sometimes all-store
			addr = uint64(rng.Intn(1 << 14))
			burst := 1 + rng.Intn(4)
			for k := 0; k < burst && len(tr) < n; k++ {
				tr = append(tr, trace.Access{Addr: addr, Kind: trace.DataWrite})
			}
			if rng.Intn(2) == 0 && len(tr) < n {
				// store-led run that installs via its first non-store
				tr = append(tr, trace.Access{Addr: addr, Kind: trace.DataRead})
			}
		case 3: // mixed same-block run: read then writes
			addr = uint64(rng.Intn(1 << 14))
			tr = append(tr, trace.Access{Addr: addr, Kind: trace.DataRead})
			for k := 0; k < rng.Intn(3) && len(tr) < n; k++ {
				tr = append(tr, trace.Access{Addr: addr, Kind: trace.DataWrite})
			}
		default: // jump write
			addr = uint64(rng.Intn(1 << 14))
			tr = append(tr, trace.Access{Addr: addr, Kind: trace.DataWrite})
		}
	}
	return tr
}

// assertStatsAndTrafficEqual compares the complete statistics record,
// per-kind splits and traffic counters included.
func assertStatsAndTrafficEqual(t *testing.T, label string, wantS, gotS Stats, wantT, gotT Traffic) {
	t.Helper()
	assertKindFreeStatsEqual(t, label, wantS, gotS)
	for k := range wantS.AccessesByKind {
		if wantS.AccessesByKind[k] != gotS.AccessesByKind[k] {
			t.Errorf("%s: AccessesByKind[%d] = %d, want %d", label, k, gotS.AccessesByKind[k], wantS.AccessesByKind[k])
		}
		if wantS.MissesByKind[k] != gotS.MissesByKind[k] {
			t.Errorf("%s: MissesByKind[%d] = %d, want %d", label, k, gotS.MissesByKind[k], wantS.MissesByKind[k])
		}
	}
	if wantT != gotT {
		t.Errorf("%s: Traffic = %+v, want %+v", label, gotT, wantT)
	}
}

var writeCombos = []struct {
	write WritePolicy
	alloc AllocPolicy
}{
	{WriteBack, WriteAllocate},
	{WriteBack, NoWriteAllocate},
	{WriteThrough, WriteAllocate},
	{WriteThrough, NoWriteAllocate},
}

// TestKindStreamEquivalence proves the kind-preserving stream replay
// bit-identical — statistics and traffic — to the per-access replay for
// every WritePolicy × AllocPolicy × replacement policy combination.
func TestKindStreamEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		tr := kindTestTrace(12_000, seed)
		for _, policy := range []cache.Policy{cache.FIFO, cache.LRU, cache.Random} {
			for _, cfg := range []cache.Config{
				mustCfg(8, 4, 16),
				mustCfg(64, 2, 4),
				mustCfg(1, 8, 32),
				mustCfg(16, 1, 8),
			} {
				bs, err := tr.BlockStreamWithKinds(cfg.BlockSize)
				if err != nil {
					t.Fatal(err)
				}
				for _, combo := range writeCombos {
					label := fmt.Sprintf("seed%d/%v/%v/%v/%v", seed, policy, cfg, combo.write, combo.alloc)
					o := Options{Config: cfg, Replacement: policy, Write: combo.write, Alloc: combo.alloc, StoreBytes: 2}
					ref, err := NewSim(o)
					if err != nil {
						t.Fatal(err)
					}
					wantS, err := ref.Simulate(tr.NewSliceReader())
					if err != nil {
						t.Fatal(err)
					}
					sim, err := NewSim(o)
					if err != nil {
						t.Fatal(err)
					}
					gotS, err := sim.SimulateStream(bs)
					if err != nil {
						t.Fatal(err)
					}
					assertStatsAndTrafficEqual(t, label, wantS, gotS, ref.Traffic(), sim.Traffic())
				}
			}
		}
	}
}

// TestKindStreamPerKindStats: a plain (non-write) simulator replaying a
// kind stream now reproduces the per-kind splits the per-access replay
// keeps — the piece the kind-free stream drops.
func TestKindStreamPerKindStats(t *testing.T) {
	tr := kindTestTrace(10_000, 9)
	for _, policy := range []cache.Policy{cache.FIFO, cache.LRU, cache.Random} {
		cfg := mustCfg(16, 2, 8)
		want, err := RunTrace(cfg, policy, tr)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := tr.BlockStreamWithKinds(cfg.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunStream(cfg, policy, bs)
		if err != nil {
			t.Fatal(err)
		}
		assertStatsAndTrafficEqual(t, fmt.Sprintf("%v", policy), want, got, Traffic{}, Traffic{})
	}
}

// TestShardedSimEquivalence: the sharded write-policy pass stitches to
// the monolithic per-access results exactly, traffic included, for every
// policy combination — including the Random fallback and kind-mix
// workload traces.
func TestShardedSimEquivalence(t *testing.T) {
	gen := workload.NewKindMix(11, workload.NewTableLookup(3, 0, 512, 8, 0.1, 0.8, trace.DataRead), 5, 4, 1)
	tr := workload.Take(gen, 15_000)
	cfg := mustCfg(64, 2, 8)
	for _, policy := range []cache.Policy{cache.FIFO, cache.LRU, cache.Random} {
		for _, log := range []int{0, 2, 3} {
			ss, err := trace.IngestShardsWithKinds(context.Background(), tr.NewSliceReader(), cfg.BlockSize, log, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, combo := range writeCombos {
				label := fmt.Sprintf("%v/log%d/%v/%v", policy, log, combo.write, combo.alloc)
				o := Options{Config: cfg, Replacement: policy, Write: combo.write, Alloc: combo.alloc}
				ref, err := NewSim(o)
				if err != nil {
					t.Fatal(err)
				}
				wantS, err := ref.Simulate(tr.NewSliceReader())
				if err != nil {
					t.Fatal(err)
				}
				sh, err := NewShardedSim(o, log, 4)
				if err != nil {
					t.Fatal(err)
				}
				if sh.Parallel() == (policy == cache.Random) {
					t.Fatalf("%s: Parallel() = %v", label, sh.Parallel())
				}
				gotS, err := sh.SimulateStream(context.Background(), ss)
				if err != nil {
					t.Fatal(err)
				}
				assertStatsAndTrafficEqual(t, label, wantS, gotS, ref.Traffic(), sh.Traffic())

				// Reset and replay must reproduce the pass.
				sh.Reset()
				gotS, err = sh.SimulateStream(context.Background(), ss)
				if err != nil {
					t.Fatal(err)
				}
				assertStatsAndTrafficEqual(t, label+"/reset", wantS, gotS, ref.Traffic(), sh.Traffic())
			}
		}
	}
}

// TestKindStreamCraftedRuns pins the no-write-allocate bypass fold on
// hand-built kind streams where the per-access expansion is easy to
// reason about: all-store runs leave the block cold, store-led runs
// install at the first non-store, and repeated bypasses re-scan the set.
func TestKindStreamCraftedRuns(t *testing.T) {
	cfg := mustCfg(1, 2, 4)
	mk := func(kinds ...trace.Kind) trace.Trace {
		tr := make(trace.Trace, len(kinds))
		for i, k := range kinds {
			tr[i] = trace.Access{Addr: 0x40, Kind: k}
		}
		return tr
	}
	cases := [][]trace.Kind{
		{trace.DataWrite, trace.DataWrite, trace.DataWrite},
		{trace.DataWrite, trace.DataWrite, trace.DataRead, trace.DataWrite},
		{trace.DataRead, trace.DataWrite, trace.DataWrite},
		{trace.IFetch, trace.IFetch, trace.DataWrite},
	}
	for ci, kinds := range cases {
		tr := mk(kinds...)
		for _, combo := range writeCombos {
			o := Options{Config: cfg, Replacement: cache.LRU, Write: combo.write, Alloc: combo.alloc}
			ref, err := NewSim(o)
			if err != nil {
				t.Fatal(err)
			}
			wantS, err := ref.Simulate(tr.NewSliceReader())
			if err != nil {
				t.Fatal(err)
			}
			bs, err := tr.BlockStreamWithKinds(cfg.BlockSize)
			if err != nil {
				t.Fatal(err)
			}
			if bs.Len() != 1 {
				t.Fatalf("case %d: crafted trace split into %d runs", ci, bs.Len())
			}
			sim, err := NewSim(o)
			if err != nil {
				t.Fatal(err)
			}
			gotS, err := sim.SimulateStream(bs)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("case%d/%v/%v", ci, combo.write, combo.alloc)
			assertStatsAndTrafficEqual(t, label, wantS, gotS, ref.Traffic(), sim.Traffic())
		}
	}
}

// FuzzKindStreamWrite fuzzes the kind-preserving stream replay against
// the per-access replay across every policy combination: the fuzzer
// chooses the trace (addresses and kinds), the geometry and the
// policies, and the two replays must agree on every statistic and
// traffic counter.
func FuzzKindStreamWrite(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 200, 7}, uint8(1), uint8(0))
	f.Add([]byte{0, 0, 0, 9, 255, 255}, uint8(6), uint8(3))
	f.Add([]byte{40, 41, 40, 41, 40, 41}, uint8(10), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, geom, pol uint8) {
		sets := 1 << (geom % 5)
		assoc := 1 + int(geom/32)%4
		block := 4 << (pol % 3)
		policy := []cache.Policy{cache.FIFO, cache.LRU, cache.Random}[int(pol/4)%3]
		combo := writeCombos[int(pol/16)%4]

		tr := make(trace.Trace, 0, len(data))
		addr := uint64(0)
		for j, b := range data {
			k := trace.Kind(uint64(b+uint8(j)) % 3)
			if b >= 192 {
				for i := 0; i < int(b-191); i++ {
					tr = append(tr, trace.Access{Addr: addr, Kind: k})
				}
				continue
			}
			addr += uint64(b)
			tr = append(tr, trace.Access{Addr: addr, Kind: k})
		}

		cfg, err := cache.NewConfig(sets, assoc, block)
		if err != nil {
			t.Skip()
		}
		o := Options{Config: cfg, Replacement: policy, Write: combo.write, Alloc: combo.alloc, StoreBytes: 1 + int(geom%4)}
		ref, err := NewSim(o)
		if err != nil {
			t.Fatal(err)
		}
		wantS, err := ref.Simulate(tr.NewSliceReader())
		if err != nil {
			t.Fatal(err)
		}
		bs, err := tr.BlockStreamWithKinds(cfg.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSim(o)
		if err != nil {
			t.Fatal(err)
		}
		gotS, err := sim.SimulateStream(bs)
		if err != nil {
			t.Fatal(err)
		}
		assertStatsAndTrafficEqual(t, "fuzz", wantS, gotS, ref.Traffic(), sim.Traffic())

		// The sharded pass over the same stream must stitch identically.
		if len(tr) > 0 {
			log := int(geom/8) % 3
			ss, err := trace.IngestShardsWithKinds(context.Background(), tr.NewSliceReader(), cfg.BlockSize, log, 2)
			if err != nil {
				t.Fatal(err)
			}
			sh, err := NewShardedSim(o, log, 2)
			if err != nil {
				t.Fatal(err)
			}
			gotSh, err := sh.SimulateStream(context.Background(), ss)
			if err != nil {
				t.Fatal(err)
			}
			assertStatsAndTrafficEqual(t, "fuzz sharded", wantS, gotSh, ref.Traffic(), sh.Traffic())
		}
	})
}
