package refsim

import (
	"fmt"

	"dew/internal/cache"
	"dew/internal/trace"
)

// Dinero IV models write handling as two orthogonal choices; this file
// adds the same axes plus the memory-traffic statistics Dinero reports
// ("bytes from memory", "bytes to memory"). Replacement-policy behaviour
// and hit/miss accounting for reads and instruction fetches are
// unaffected; only stores interact with these options.

// WritePolicy selects how write hits propagate to the next level.
type WritePolicy uint8

const (
	// WriteBack marks the block dirty and writes it to memory only on
	// eviction.
	WriteBack WritePolicy = iota
	// WriteThrough sends every store to memory immediately; blocks are
	// never dirty.
	WriteThrough
)

// String returns the conventional name.
func (w WritePolicy) String() string {
	switch w {
	case WriteBack:
		return "write-back"
	case WriteThrough:
		return "write-through"
	default:
		return fmt.Sprintf("WritePolicy(%d)", uint8(w))
	}
}

// AllocPolicy selects what a write miss does.
type AllocPolicy uint8

const (
	// WriteAllocate fetches the block on a write miss and installs it
	// (the behaviour the multi-configuration simulators model for every
	// access kind).
	WriteAllocate AllocPolicy = iota
	// NoWriteAllocate sends the store to memory without installing the
	// block; write misses do not disturb the cache.
	NoWriteAllocate
)

// String returns the conventional name.
func (a AllocPolicy) String() string {
	switch a {
	case WriteAllocate:
		return "write-allocate"
	case NoWriteAllocate:
		return "no-write-allocate"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", uint8(a))
	}
}

// Options fully parameterizes a reference simulation.
type Options struct {
	// Config is the cache geometry.
	Config cache.Config
	// Replacement is the replacement policy (FIFO, LRU, Random).
	Replacement cache.Policy
	// Write selects write-back (default) or write-through.
	Write WritePolicy
	// Alloc selects write-allocate (default) or no-write-allocate.
	Alloc AllocPolicy
	// StoreBytes is the store width used for write-through /
	// no-write-allocate traffic accounting; 0 defaults to 4.
	StoreBytes int
}

// Traffic is the memory-side byte accounting of a simulation.
type Traffic struct {
	// BytesFromMemory counts block fills (misses that install a block).
	BytesFromMemory uint64
	// BytesToMemory counts write-through stores, no-write-allocate
	// stores and write-back evictions.
	BytesToMemory uint64
	// Writebacks counts dirty evictions.
	Writebacks uint64
}

// NewSim builds a fully-parameterized Simulator.
func NewSim(o Options) (*Simulator, error) {
	s, err := New(o.Config, o.Replacement)
	if err != nil {
		return nil, err
	}
	if o.StoreBytes < 0 {
		return nil, fmt.Errorf("refsim: negative store width %d", o.StoreBytes)
	}
	s.write = o.Write
	s.alloc = o.Alloc
	s.storeBytes = o.StoreBytes
	if s.storeBytes == 0 {
		s.storeBytes = 4
	}
	s.dirty = make([]bool, o.Config.Sets*o.Config.Assoc)
	return s, nil
}

// Traffic returns the memory-traffic counters. It is zero unless the
// simulator was built with NewSim (New keeps the legacy
// allocate-everything behaviour with no traffic accounting).
func (s *Simulator) Traffic() Traffic { return s.traffic }

// accessWrite handles a store under the configured write/alloc policies.
// It returns whether the access hit. Called from Access for simulators
// built with NewSim.
func (s *Simulator) accessWrite(set int, tag uint64, blk uint64) bool {
	base := set * s.cfg.Assoc
	hitWay := s.findWay(set, tag)
	if hitWay >= 0 {
		if s.policy == cache.LRU {
			s.touchLRU(set, hitWay)
		}
		if s.write == WriteBack {
			s.dirty[base+hitWay] = true
		} else {
			s.traffic.BytesToMemory += uint64(s.storeBytes)
		}
		return true
	}

	// Write miss.
	s.stats.Misses++
	s.stats.MissesByKind[trace.DataWrite]++
	if _, ok := s.seen[blk]; !ok {
		s.seen[blk] = struct{}{}
		s.stats.CompulsoryMisses++
	}
	if s.alloc == NoWriteAllocate {
		// The store bypasses the cache entirely.
		s.traffic.BytesToMemory += uint64(s.storeBytes)
		return false
	}
	// Allocate: fetch the block, install it, then apply the store.
	s.traffic.BytesFromMemory += uint64(s.fillBytes)
	w := s.insertAt(set, tag)
	if s.write == WriteBack {
		s.dirty[base+w] = true
	} else {
		s.traffic.BytesToMemory += uint64(s.storeBytes)
	}
	return false
}

// findWay searches the set for the tag, counting comparisons exactly as
// the read path does, and returns the way index or -1.
func (s *Simulator) findWay(set int, tag uint64) int {
	base := set * s.cfg.Assoc
	if s.policy == cache.LRU {
		for i := 0; i < int(s.fill[set]); i++ {
			w := int(s.order[base+i])
			s.stats.TagComparisons++
			if s.tags[base+w] == tag {
				return w
			}
		}
		return -1
	}
	for w := 0; w < int(s.fill[set]); w++ {
		s.stats.TagComparisons++
		if s.valid[base+w] && s.tags[base+w] == tag {
			return w
		}
	}
	return -1
}

// insertAt is insert, but additionally returns the way used and performs
// dirty-eviction accounting. Only called on the NewSim path.
func (s *Simulator) insertAt(set int, tag uint64) int {
	base := set * s.cfg.Assoc
	assoc := s.cfg.Assoc

	if int(s.fill[set]) < assoc {
		w := int(s.fill[set])
		s.tags[base+w] = tag
		s.valid[base+w] = true
		s.fill[set]++
		if s.policy == cache.LRU {
			copy(s.order[base+1:base+w+1], s.order[base:base+w])
			s.order[base] = int8(w)
		}
		s.dirty[base+w] = false
		return w
	}

	var w int
	switch s.policy {
	case cache.FIFO:
		w = int(s.head[set])
		s.head[set] = int32((w + 1) % assoc)
	case cache.LRU:
		w = int(s.order[base+assoc-1])
		copy(s.order[base+1:base+assoc], s.order[base:base+assoc-1])
		s.order[base] = int8(w)
	case cache.Random:
		s.rnd ^= s.rnd << 13
		s.rnd ^= s.rnd >> 7
		s.rnd ^= s.rnd << 17
		w = int(s.rnd % uint64(assoc))
	}
	s.stats.Evictions++
	if s.dirty[base+w] {
		s.traffic.BytesToMemory += uint64(s.fillBytes)
		s.traffic.Writebacks++
		s.dirty[base+w] = false
	}
	s.tags[base+w] = tag
	return w
}
