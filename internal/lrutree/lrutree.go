// Package lrutree is a single-pass multi-configuration simulator for the
// LRU replacement policy, in the spirit of the related work the DEW paper
// builds on: Janapsatya's binomial-tree method (ASP-DAC'06, reference
// [13]) with pruning enhancements in the spirit of the CRCB algorithm
// (ASP-DAC'09, reference [20]).
//
// It serves three roles in this repository: an executable model of the
// LRU inclusion properties that DEW cannot use under FIFO (Section 1 of
// the paper), the LRU counterpart for the policy-comparison example, and
// a same-codebase baseline for the "single-pass vs per-configuration"
// speed argument under a different policy.
//
// The simulation tree is the same binomial structure DEW uses: level L
// holds the 2^L sets of the configuration with 2^L sets (a forest of
// 2^MinLogSets trees when MinLogSets > 0); an access visits one node per
// level. Each node keeps its tag list in recency order (most recently
// used first), so the node's head is simultaneously the content of the
// direct-mapped configuration at that level, and searches touch hot tags
// first (Janapsatya's temporal-locality search order).
//
// Pruning rules (each an LRU-only property):
//
//   - Same-block pruning (CRCB-style): a request to the same block as the
//     immediately preceding request hits every configuration and changes
//     no LRU state; the access is skipped entirely.
//   - MRU cut-off: if the requested tag is at the MRU position of a node,
//     then — by the same containment argument as DEW's Property 2 — it is
//     the MRU tag of the relevant set in every deeper level, the access
//     hits everywhere below, and every reorder is a no-op: the walk
//     stops.
//   - Inclusion: a hit at set count S implies a hit at every larger set
//     count (equal associativity and block size), so once a level hits,
//     deeper levels take no miss counting — but their recency orders
//     still need updating, which bounds how much work inclusion alone
//     can save and motivates the cut-off rules.
//
// # Instrumented and fast paths
//
// Like the DEW core, the simulator exposes two equivalent evaluation
// paths. Access (and Simulate) is the instrumented path, maintaining the
// full Counters set. AccessBatch / SimulateBatch and the stream entry
// points AccessRuns / SimulateStream are the counter-free fast path: the
// same walk with per-access counter increments compiled out (only
// Counters.Accesses is maintained), the per-node metadata packed into a
// level-major nodeState arena — the same layout the DEW core's fast path
// uses — and the per-level miss splits for the direct-mapped
// configurations recovered from an exit-depth histogram. The two paths
// are bit-identical in Results (fast_test.go enforces it). Setting
// Options.Instrument, or disabling a pruning rule, routes the batched
// entry points back through Access.
//
// Sharded mirrors the DEW core's set-sharded parallel pass for the LRU
// tree: one shallow pass plus 2^S per-tree substream replays of a
// trace.ShardStream, stitched bit-identical to the monolithic pass
// (shard_test.go enforces it). Reset reuses the arenas across repeated
// passes.
package lrutree

import (
	"fmt"
	"math/bits"

	"dew/internal/cache"
	"dew/internal/trace"
)

// Options configures one LRU tree pass, covering set counts 2^MinLogSets
// .. 2^MaxLogSets at one associativity and block size (plus direct-mapped
// results for free).
type Options struct {
	// MinLogSets and MaxLogSets bound the simulated set counts as log2.
	MinLogSets, MaxLogSets int
	// Assoc is the associativity (power of two, 1..64).
	Assoc int
	// BlockSize is the block size in bytes (power of two).
	BlockSize int

	// DisableSameBlock and DisableMRUCutoff switch off the pruning rules
	// for ablation; results are unchanged.
	DisableSameBlock bool
	DisableMRUCutoff bool

	// Instrument forces the batched entry points (AccessBatch,
	// SimulateBatch, AccessRuns, SimulateStream) onto the instrumented
	// per-access path, maintaining the full Counters set exactly as
	// Access does. When false (the default) and no pruning rule is
	// disabled, they take the counter-free fast path: identical Results,
	// but only Counters.Accesses is maintained.
	Instrument bool
}

// instrumented reports whether the batched entry points must route
// through the fully counted per-access path: explicitly requested, or
// required because an ablation switch changes which counters move.
func (o Options) instrumented() bool {
	return o.Instrument || o.DisableSameBlock || o.DisableMRUCutoff
}

// Validate reports whether the options are simulatable.
func (o Options) Validate() error {
	if o.MinLogSets < 0 || o.MaxLogSets < o.MinLogSets {
		return fmt.Errorf("lrutree: invalid set-count range [2^%d, 2^%d]", o.MinLogSets, o.MaxLogSets)
	}
	if o.MaxLogSets > 22 {
		return fmt.Errorf("lrutree: max log2 set count %d exceeds supported 22", o.MaxLogSets)
	}
	if o.Assoc < 1 || o.Assoc > 64 || o.Assoc&(o.Assoc-1) != 0 {
		return fmt.Errorf("lrutree: associativity must be a power of two in [1, 64], got %d", o.Assoc)
	}
	if o.BlockSize < 1 || o.BlockSize&(o.BlockSize-1) != 0 {
		return fmt.Errorf("lrutree: block size must be a positive power of two, got %d", o.BlockSize)
	}
	return nil
}

// Levels returns the number of tree levels.
func (o Options) Levels() int { return o.MaxLogSets - o.MinLogSets + 1 }

// Counters records the work one pass performed, comparable with the DEW
// core's counters. The counter-free fast path maintains only Accesses.
type Counters struct {
	// Accesses is the number of requests processed (including skipped).
	Accesses uint64
	// NodeEvaluations counts visited tree nodes, two per node (the
	// direct-mapped check plus the A-way list work), matching the DEW
	// accounting convention.
	NodeEvaluations uint64
	// SameBlockSkips counts accesses pruned entirely because they
	// repeated the previous block address.
	SameBlockSkips uint64
	// MRUCutoffs counts walks stopped because the tag was at a node's
	// MRU position.
	MRUCutoffs uint64
	// Searches counts recency-list scans.
	Searches uint64
	// TagComparisons counts tag equality tests.
	TagComparisons uint64
}

// nodeState packs one node's (one cache set's) metadata into a single
// record: the MRU tag the direct-mapped check reads on every visit —
// always equal to the head of the node's recency list — plus the fill
// count. The usual outcome of a level (MRU cut-off, walk stops) is
// decided from this one record without touching the tag list, the same
// trick the DEW core's nodeState plays with its MRA tag.
type nodeState struct {
	mru  uint64 // most recently used tag (= the DM configuration's content); valid when fill > 0
	fill int8   // number of valid ways
}

// level holds the per-level views into the arenas: node i of a level
// with 2^log sets owns entries [i*assoc, (i+1)*assoc) of tags and record
// i of node, in recency order (tags[base] is MRU).
type level struct {
	mask uint64 // 2^log - 1
	tags []uint64
	node []nodeState
}

// Simulator is one LRU tree pass in progress.
//
// All per-way and per-node state lives in two level-major arenas (nodes,
// tags); each level's slices are views into them. The instrumented path
// walks the per-level views, the fast path walks the arenas directly
// with incrementally computed masks and offsets — same memory, same
// results.
type Simulator struct {
	opt     Options
	offBits uint
	assoc   int
	levels  []level

	// Arenas backing every level's slices, concatenated in level order.
	nodes []nodeState
	tags  []uint64

	// missDM and missA hold each level's miss counts for the
	// associativity-1 and associativity-A configurations, in two dense
	// arrays (the hottest writes of the walk).
	missDM []uint64
	missA  []uint64

	// exitHist is the fast path's pending exit-depth histogram:
	// exitHist[d] counts accesses whose walk ended with the MRU cut-off
	// at level d (or d == Levels() for full walks). A walk increments
	// missDM at exactly the levels before its exit, so
	// missDM[l] ≡ Σ_{d>l} exitHist[d]; foldExitHist folds the suffix
	// sums back after each batch or stream chunk.
	exitHist []uint64

	// havePrev/prevBlk memoize the most recently simulated block for
	// same-block pruning; the fast path shares them so entry points can
	// be mixed on one Simulator.
	havePrev bool
	prevBlk  uint64

	counters Counters
}

// New builds a Simulator for the options.
func New(opt Options) (*Simulator, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		opt:     opt,
		offBits: uint(bits.TrailingZeros(uint(opt.BlockSize))),
		assoc:   opt.Assoc,
		levels:  make([]level, opt.Levels()),
	}
	totalNodes := 0
	for i := range s.levels {
		totalNodes += 1 << (opt.MinLogSets + i)
	}
	s.nodes = make([]nodeState, totalNodes)
	s.tags = make([]uint64, totalNodes*opt.Assoc)
	s.missDM = make([]uint64, opt.Levels())
	s.missA = make([]uint64, opt.Levels())
	s.exitHist = make([]uint64, opt.Levels()+1)
	nodeOff, wayOff := 0, 0
	for i := range s.levels {
		nodes := 1 << (opt.MinLogSets + i)
		ways := nodes * opt.Assoc
		lv := &s.levels[i]
		lv.mask = uint64(nodes - 1)
		lv.node = s.nodes[nodeOff : nodeOff+nodes : nodeOff+nodes]
		lv.tags = s.tags[wayOff : wayOff+ways : wayOff+ways]
		nodeOff += nodes
		wayOff += ways
	}
	return s, nil
}

// Reset returns the simulator to its freshly constructed state while
// keeping both arena allocations, so repeated passes — benchmark
// iterations, sweep cells, per-shard tree replays — run with zero
// steady-state allocations. The tag arena can stay stale: every read of
// a way is gated on the owning node's fill count (and the MRU check on
// fill > 0), which Reset zeroes, so a stale entry is unreachable until
// an insertion rewrites it — exactly as an uninitialized entry is after
// New.
func (s *Simulator) Reset() {
	clear(s.nodes)
	clear(s.missDM)
	clear(s.missA)
	clear(s.exitHist)
	s.counters = Counters{}
	s.havePrev, s.prevBlk = false, 0
}

// Options returns the pass configuration.
func (s *Simulator) Options() Options { return s.opt }

// Counters returns a snapshot of the work counters.
func (s *Simulator) Counters() Counters { return s.counters }

// UnoptimizedEvaluations returns the work bound of a property-free pass:
// two evaluations per level per access.
func (s *Simulator) UnoptimizedEvaluations() uint64 {
	return 2 * uint64(s.opt.Levels()) * s.counters.Accesses
}

// Access simulates one request against every configuration of the pass.
func (s *Simulator) Access(a trace.Access) {
	blk := a.Addr >> s.offBits
	s.counters.Accesses++

	if !s.opt.DisableSameBlock && s.havePrev && blk == s.prevBlk {
		// Same-block pruning: a repeat hits everywhere and every
		// LRU reorder is a no-op.
		s.counters.SameBlockSkips++
		return
	}
	s.havePrev = true
	s.prevBlk = blk

	for li := range s.levels {
		lv := &s.levels[li]
		node := int(blk & lv.mask)
		nd := &lv.node[node]
		base := node * s.assoc
		s.counters.NodeEvaluations += 2

		fill := int(nd.fill)
		// Direct-mapped check: the MRU tag is the DM content.
		s.counters.TagComparisons++
		mruHit := fill > 0 && nd.mru == blk
		if mruHit {
			if !s.opt.DisableMRUCutoff {
				// The tag is MRU here, hence MRU in every deeper set it
				// maps to: hits everywhere below, no state changes.
				s.counters.MRUCutoffs++
				return
			}
			// Cut-off disabled: the hit still needs no reorder at this
			// level; continue to the next level.
			continue
		}
		s.missDM[li]++

		// Scan the recency list (skipping the MRU slot already tested).
		s.counters.Searches++
		hitAt := -1
		for w := 1; w < fill; w++ {
			s.counters.TagComparisons++
			if lv.tags[base+w] == blk {
				hitAt = w
				break
			}
		}
		if hitAt >= 0 {
			// Hit: rotate the tag to the MRU position.
			copy(lv.tags[base+1:base+hitAt+1], lv.tags[base:base+hitAt])
			lv.tags[base] = blk
			nd.mru = blk
			continue
		}

		// Miss: insert at MRU, evicting the LRU tail if full.
		s.missA[li]++
		if fill < s.assoc {
			copy(lv.tags[base+1:base+fill+1], lv.tags[base:base+fill])
			nd.fill++
		} else {
			copy(lv.tags[base+1:base+s.assoc], lv.tags[base:base+s.assoc-1])
		}
		lv.tags[base] = blk
		nd.mru = blk
	}
}

// Simulate drains the reader through the instrumented per-access path.
// Reads are batched (trace.BatchReader) so the reader is consulted once
// per chunk, but every access maintains the full counter set. For the
// counter-free fast path use SimulateBatch or SimulateStream.
func (s *Simulator) Simulate(r trace.Reader) error {
	return trace.Drain(r, func(batch []trace.Access) {
		for _, a := range batch {
			s.Access(a)
		}
	})
}

// Result pairs a configuration with its outcome.
type Result struct {
	Config cache.Config
	cache.Stats
}

// Results returns exact statistics for every covered configuration, in
// ascending set count, direct-mapped before A-way (matching the DEW
// core's Results layout).
func (s *Simulator) Results() []Result {
	return buildResults(s.opt, s.counters.Accesses, s.missDM, s.missA)
}

// buildResults assembles the per-configuration Result layout shared by
// the monolithic simulator and the stitched sharded pass.
func buildResults(opt Options, accesses uint64, missDM, missA []uint64) []Result {
	var out []Result
	for i := 0; i < opt.Levels(); i++ {
		sets := 1 << (opt.MinLogSets + i)
		if opt.Assoc > 1 {
			out = append(out, Result{
				Config: cache.Config{Sets: sets, Assoc: 1, BlockSize: opt.BlockSize},
				Stats:  cache.Stats{Accesses: accesses, Misses: missDM[i]},
			})
		}
		out = append(out, Result{
			Config: cache.Config{Sets: sets, Assoc: opt.Assoc, BlockSize: opt.BlockSize},
			Stats:  cache.Stats{Accesses: accesses, Misses: missA[i]},
		})
	}
	return out
}

// Run builds a Simulator, drains the reader and returns it.
func Run(opt Options, r trace.Reader) (*Simulator, error) {
	s, err := New(opt)
	if err != nil {
		return nil, err
	}
	if err := s.Simulate(r); err != nil {
		return nil, err
	}
	return s, nil
}
