package lrutree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dew/internal/cache"
	"dew/internal/refsim"
	"dew/internal/trace"
)

func randomTrace(n int, addrSpace int64, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := make(trace.Trace, n)
	for i := range t {
		t[i] = trace.Access{Addr: uint64(rng.Int63n(addrSpace))}
	}
	return t
}

func streakyTrace(n int, addrSpace int64, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := make(trace.Trace, n)
	var prev uint64
	for i := range t {
		switch rng.Intn(4) {
		case 0:
			t[i] = trace.Access{Addr: prev}
		case 1:
			t[i] = trace.Access{Addr: prev + uint64(rng.Intn(8))}
		default:
			t[i] = trace.Access{Addr: uint64(rng.Int63n(addrSpace))}
		}
		prev = t[i].Addr
	}
	return t
}

func checkExact(t *testing.T, opt Options, tr trace.Trace) {
	t.Helper()
	s := mustSim(opt)
	if err := s.Simulate(tr.NewSliceReader()); err != nil {
		t.Fatal(err)
	}
	for _, res := range s.Results() {
		want, err := refsim.RunTrace(res.Config, cache.LRU, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses != want.Misses {
			t.Errorf("opts %+v, config %v: tree misses = %d, refsim misses = %d",
				opt, res.Config, res.Misses, want.Misses)
		}
	}
}

func TestExactnessRandomTraces(t *testing.T) {
	for _, assoc := range []int{1, 2, 4, 8} {
		for _, block := range []int{1, 4, 32} {
			opt := Options{MaxLogSets: 6, Assoc: assoc, BlockSize: block}
			for seed := int64(0); seed < 3; seed++ {
				checkExact(t, opt, randomTrace(4000, 1<<14, seed))
			}
		}
	}
}

func TestExactnessStreakyTraces(t *testing.T) {
	for _, assoc := range []int{1, 2, 16} {
		opt := Options{MaxLogSets: 7, Assoc: assoc, BlockSize: 4}
		for seed := int64(10); seed < 14; seed++ {
			checkExact(t, opt, streakyTrace(6000, 1<<12, seed))
		}
	}
}

func TestExactnessTinyAddressSpace(t *testing.T) {
	for _, assoc := range []int{2, 4} {
		opt := Options{MaxLogSets: 4, Assoc: assoc, BlockSize: 1}
		for seed := int64(20); seed < 25; seed++ {
			checkExact(t, opt, randomTrace(8000, 48, seed))
		}
	}
}

func TestExactnessForest(t *testing.T) {
	checkExact(t, Options{MinLogSets: 2, MaxLogSets: 7, Assoc: 4, BlockSize: 8},
		streakyTrace(5000, 1<<13, 30))
}

func TestAblationEquivalence(t *testing.T) {
	tr := streakyTrace(8000, 1<<12, 40)
	base := mustSim(Options{MaxLogSets: 7, Assoc: 4, BlockSize: 4})
	if err := base.Simulate(tr.NewSliceReader()); err != nil {
		t.Fatal(err)
	}
	baseRes := base.Results()
	variants := []Options{
		{MaxLogSets: 7, Assoc: 4, BlockSize: 4, DisableSameBlock: true},
		{MaxLogSets: 7, Assoc: 4, BlockSize: 4, DisableMRUCutoff: true},
		{MaxLogSets: 7, Assoc: 4, BlockSize: 4, DisableSameBlock: true, DisableMRUCutoff: true},
	}
	for _, opt := range variants {
		v := mustSim(opt)
		if err := v.Simulate(tr.NewSliceReader()); err != nil {
			t.Fatal(err)
		}
		res := v.Results()
		for i := range res {
			if res[i] != baseRes[i] {
				t.Errorf("%+v: result %d = %+v, want %+v", opt, i, res[i], baseRes[i])
			}
		}
	}
}

// LRU inclusion: within one pass, misses must be non-increasing in set
// count for both associativities.
func TestInclusionAcrossLevels(t *testing.T) {
	tr := randomTrace(20000, 1<<13, 50)
	s := mustSim(Options{MaxLogSets: 8, Assoc: 4, BlockSize: 4})
	if err := s.Simulate(tr.NewSliceReader()); err != nil {
		t.Fatal(err)
	}
	var prevDM, prevA uint64
	for i := range s.levels {
		if i > 0 {
			if s.missDM[i] > prevDM {
				t.Errorf("level %d: DM misses rose %d -> %d", i, prevDM, s.missDM[i])
			}
			if s.missA[i] > prevA {
				t.Errorf("level %d: A-way misses rose %d -> %d", i, prevA, s.missA[i])
			}
		}
		prevDM, prevA = s.missDM[i], s.missA[i]
	}
}

func TestSameBlockSkip(t *testing.T) {
	s := mustSim(Options{MaxLogSets: 5, Assoc: 4, BlockSize: 16})
	// Addresses within one 16-byte block.
	for i := 0; i < 50; i++ {
		s.Access(trace.Access{Addr: uint64(i % 16)})
	}
	c := s.Counters()
	if c.SameBlockSkips != 49 {
		t.Errorf("SameBlockSkips = %d, want 49", c.SameBlockSkips)
	}
	// Only the first access did any tree work.
	if c.NodeEvaluations != 2*6 {
		t.Errorf("NodeEvaluations = %d, want 12", c.NodeEvaluations)
	}
	for _, res := range s.Results() {
		if res.Misses != 1 {
			t.Errorf("%v: misses = %d, want 1", res.Config, res.Misses)
		}
	}
}

func TestMRUCutoff(t *testing.T) {
	s := mustSim(Options{MaxLogSets: 5, Assoc: 4, BlockSize: 1, DisableSameBlock: true})
	for i := 0; i < 50; i++ {
		s.Access(trace.Access{Addr: 7})
	}
	c := s.Counters()
	if c.MRUCutoffs != 49 {
		t.Errorf("MRUCutoffs = %d, want 49", c.MRUCutoffs)
	}
	if c.NodeEvaluations != 2*6+49*2 {
		t.Errorf("NodeEvaluations = %d, want %d", c.NodeEvaluations, 2*6+49*2)
	}
}

func TestResultsShape(t *testing.T) {
	s := mustSim(Options{MinLogSets: 1, MaxLogSets: 3, Assoc: 2, BlockSize: 4})
	s.Access(trace.Access{Addr: 0})
	res := s.Results()
	if len(res) != 6 {
		t.Fatalf("len(Results) = %d, want 6", len(res))
	}
	if res[0].Config.Assoc != 1 || res[1].Config.Assoc != 2 || res[0].Config.Sets != 2 {
		t.Errorf("unexpected leading results: %+v, %+v", res[0], res[1])
	}
	sAssoc1 := mustSim(Options{MaxLogSets: 2, Assoc: 1, BlockSize: 4})
	sAssoc1.Access(trace.Access{Addr: 0})
	if got := len(sAssoc1.Results()); got != 3 {
		t.Errorf("assoc-1 results = %d, want 3", got)
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{MinLogSets: -1, MaxLogSets: 2, Assoc: 1, BlockSize: 1},
		{MinLogSets: 3, MaxLogSets: 2, Assoc: 1, BlockSize: 1},
		{MaxLogSets: 23, Assoc: 1, BlockSize: 1},
		{MaxLogSets: 2, Assoc: 5, BlockSize: 1},
		{MaxLogSets: 2, Assoc: 0, BlockSize: 1},
		{MaxLogSets: 2, Assoc: 1, BlockSize: 6},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("case %d: New accepted %+v", i, o)
		}
	}
}

func TestNewRejectsInvalidOptions(t *testing.T) {
	if _, err := New(Options{Assoc: 0, BlockSize: 1}); err == nil {
		t.Fatal("New accepted zero associativity")
	}
}

func TestRunAndErrors(t *testing.T) {
	tr := randomTrace(100, 256, 60)
	s, err := Run(Options{MaxLogSets: 3, Assoc: 2, BlockSize: 4}, tr.NewSliceReader())
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters().Accesses != 100 {
		t.Errorf("accesses = %d", s.Counters().Accesses)
	}
	if _, err := Run(Options{Assoc: 0, BlockSize: 1}, nil); err == nil {
		t.Error("Run should reject invalid options")
	}
	boom := trace.FuncReader(func() (trace.Access, error) { return trace.Access{}, errTest })
	if _, err := Run(Options{MaxLogSets: 2, Assoc: 2, BlockSize: 4}, boom); err == nil {
		t.Error("Run should propagate reader errors")
	}
}

var errTest = errorString("test error")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestQuickExactness(t *testing.T) {
	f := func(addrs []uint16, logAssoc, maxLog uint8) bool {
		if len(addrs) == 0 {
			return true
		}
		opt := Options{
			MaxLogSets: int(maxLog%5) + 1,
			Assoc:      1 << (logAssoc % 4),
			BlockSize:  4,
		}
		tr := make(trace.Trace, len(addrs))
		for i, a := range addrs {
			tr[i] = trace.Access{Addr: uint64(a) % 2048}
		}
		s := mustSim(opt)
		if err := s.Simulate(tr.NewSliceReader()); err != nil {
			return false
		}
		for _, res := range s.Results() {
			want, err := refsim.RunTrace(res.Config, cache.LRU, tr)
			if err != nil || res.Misses != want.Misses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorkBelowUnoptimized(t *testing.T) {
	tr := streakyTrace(10000, 1<<12, 70)
	s := mustSim(Options{MaxLogSets: 8, Assoc: 4, BlockSize: 4})
	if err := s.Simulate(tr.NewSliceReader()); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.NodeEvaluations >= s.UnoptimizedEvaluations() {
		t.Errorf("pruning saved nothing: %d >= %d", c.NodeEvaluations, s.UnoptimizedEvaluations())
	}
}

// mustSim builds a Simulator test fixture, panicking on options that
// could only be wrong at authoring time.
func mustSim(opt Options) *Simulator {
	s, err := New(opt)
	if err != nil {
		panic(err)
	}
	return s
}
