package lrutree

import (
	"fmt"

	"dew/internal/trace"
)

// AccessBatch simulates a slice of memory requests against every
// configuration of the pass. With Options.Instrument unset and no
// pruning rule ablated it takes the counter-free fast path — identical
// Results to Access, with only Counters.Accesses maintained; otherwise
// it feeds the instrumented per-access path so every counter moves
// exactly as it would under Access.
func (s *Simulator) AccessBatch(batch []trace.Access) {
	if s.opt.instrumented() {
		for _, a := range batch {
			s.Access(a)
		}
		return
	}
	s.counters.Accesses += uint64(len(batch))
	off := s.offBits
	prev, ok := s.prevBlk, s.havePrev
	for k := range batch {
		blk := batch[k].Addr >> off
		if ok && blk == prev {
			// Same-block pruning: a repeat hits everywhere and every
			// LRU reorder is a no-op.
			continue
		}
		prev, ok = blk, true
		s.accessFast(blk)
	}
	s.prevBlk, s.havePrev = prev, ok
	s.foldExitHist()
}

// SimulateBatch drains the reader through AccessBatch in
// trace.DefaultBatchSize chunks. It is the fast-path counterpart of
// Simulate.
func (s *Simulator) SimulateBatch(r trace.Reader) error {
	return trace.Drain(r, s.AccessBatch)
}

// SimulateStream replays a materialized block stream through the pass.
// The stream must have been materialized at the pass's block size. Like
// the DEW core's SimulateStream, the stream is only read, so one stream
// may be shared by concurrent passes on distinct simulators.
func (s *Simulator) SimulateStream(bs *trace.BlockStream) error {
	if bs.BlockSize != s.opt.BlockSize {
		return fmt.Errorf("lrutree: stream materialized at block size %d, pass simulates %d",
			bs.BlockSize, s.opt.BlockSize)
	}
	s.AccessRuns(bs.IDs, bs.Runs)
	return nil
}

// AccessRuns simulates a run-length-compressed sequence of block IDs:
// ids[i] accessed runs[i] consecutive times (zero-weight entries are
// skipped). Run folding is exact because every access after the first
// of a run is precisely a same-block repeat, which the CRCB pruning
// rule proves hits every configuration and reorders nothing; the fast
// path walks the tree once per run, the Instrument path walks once and
// folds the remaining weight into the SameBlockSkips counter
// arithmetically. With a pruning rule ablated the fold is invalid (the
// whole point of the ablation is moving different counters), so runs
// are expanded through Access.
func (s *Simulator) AccessRuns(ids []uint64, runs []uint32) {
	if len(ids) != len(runs) {
		panic(fmt.Sprintf("lrutree: AccessRuns columns disagree: %d ids, %d runs", len(ids), len(runs)))
	}
	if s.opt.DisableSameBlock || s.opt.DisableMRUCutoff {
		off := s.offBits
		for i, id := range ids {
			for k := uint32(0); k < runs[i]; k++ {
				s.Access(trace.Access{Addr: id << off})
			}
		}
		return
	}
	if s.opt.Instrument {
		off := s.offBits
		for i, id := range ids {
			w := runs[i]
			if w == 0 {
				continue
			}
			s.Access(trace.Access{Addr: id << off})
			// The remaining w-1 accesses are same-block skips: each
			// counts one access and one skip, then stops.
			rest := uint64(w - 1)
			s.counters.Accesses += rest
			s.counters.SameBlockSkips += rest
		}
		return
	}

	var total uint64
	prev, ok := s.prevBlk, s.havePrev
	for i, id := range ids {
		w := runs[i]
		if w == 0 {
			continue
		}
		total += uint64(w)
		if ok && id == prev {
			// Chunk boundary mid-run, or a repeat across entry points.
			continue
		}
		prev, ok = id, true
		s.accessFast(id)
	}
	s.prevBlk, s.havePrev = prev, ok
	s.counters.Accesses += total
	s.foldExitHist()
}

// accessFast is Access with the instrumentation compiled out: the same
// walk down the simulation tree — MRU cut-off, recency-list scan,
// rotate-or-insert — mutating exactly the same state in exactly the same
// order, so results are bit-identical to the instrumented path. Same-
// block pruning happens in the callers' memo check before this runs.
//
// It walks the level-major arenas directly, with the per-level node mask
// and arena offsets computed incrementally in registers (mask doubles,
// offsets advance by the previous level's size), so the only memory a
// level touches before its MRU verdict is the node's own packed record —
// the layout ported from the DEW core's fast path.
func (s *Simulator) accessFast(blk uint64) {
	assoc := s.assoc
	nodes := s.nodes
	tags := s.tags
	missA := s.missA
	exitHist := s.exitHist
	nLevels := len(s.levels)

	mask := uint64(1)<<uint(s.opt.MinLogSets) - 1 // level-0 node mask, doubling per level
	nodeOff := 0                                  // arena offset of the level's node records
	wayOff := 0                                   // arena offset of the level's way entries

	for li := 0; li < nLevels; li++ {
		node := int(blk & mask)
		nd := &nodes[nodeOff+node]
		levelNodes := int(mask) + 1
		nodeOff += levelNodes
		base := wayOff + node*assoc
		wayOff += levelNodes * assoc
		mask = mask<<1 | 1

		fill := int(nd.fill)
		// Direct-mapped check, doubling as the MRU cut-off: decided
		// from the packed record alone (tag first, validity second —
		// both pure loads).
		if nd.mru == blk && fill > 0 {
			// MRU here, hence MRU in every deeper set it maps to: hits
			// everywhere below, no state changes, the walk stops. The
			// exit depth stands in for the per-level missDM increments
			// (see Simulator.exitHist).
			exitHist[li]++
			return
		}

		// Scan the recency list (the MRU slot is already decided).
		hitAt := -1
		for w := 1; w < fill; w++ {
			if tags[base+w] == blk {
				hitAt = w
				break
			}
		}
		if hitAt >= 0 {
			// Hit: rotate the tag to the MRU position.
			copy(tags[base+1:base+hitAt+1], tags[base:base+hitAt])
			tags[base] = blk
			nd.mru = blk
			continue
		}

		// Miss: insert at MRU, evicting the LRU tail if full.
		missA[li]++
		if fill < assoc {
			copy(tags[base+1:base+fill+1], tags[base:base+fill])
			nd.fill++
		} else {
			copy(tags[base+1:base+assoc], tags[base:base+assoc-1])
		}
		tags[base] = blk
		nd.mru = blk
	}
	exitHist[nLevels]++
}

// foldExitHist folds the pending exit-depth histogram into missDM: an
// exit at depth d means the walk MRU-missed (and so direct-mapped-
// missed) levels 0..d-1. Memoized same-block skips and folded run
// weights are level-0 exits and contribute to no level.
func (s *Simulator) foldExitHist() {
	var suffix uint64
	for li := len(s.exitHist) - 1; li >= 1; li-- {
		suffix += s.exitHist[li]
		s.exitHist[li] = 0
		s.missDM[li-1] += suffix
	}
}
