package lrutree

import (
	"context"
	"fmt"
	"runtime"

	"dew/internal/pool"
	"dew/internal/trace"
)

// Sharded is one LRU tree pass decomposed for intra-pass parallelism at
// a shard level S, mirroring the DEW core's core.Sharded: a shallow
// pass over the levels above S replaying the full block stream, plus
// 2^S independent tree passes each replaying its own substream of a
// trace.ShardStream, stitched back into per-level miss tables
// bit-identical to the monolithic pass.
//
// The exactness argument is the same as the core's and does not depend
// on the replacement policy: each level is the exact simulation of one
// configuration, the forest's trees at levels ≥ S never share a node,
// and a node's recency order evolves only with its own access
// subsequence, whose order the shard substream preserves. The pruning
// rules (same-block, MRU cut-off) only save work inside one tree walk.
//
// Like the core's, the sharded pass is counter-free: only Results (and
// Accesses) are defined; the work counters need the monolithic pass.
type Sharded struct {
	opt     Options
	log     int
	workers int

	// shallow simulates levels [MinLogSets, S) over the full stream;
	// nil when S ≤ MinLogSets.
	shallow *Simulator
	// trees[t] simulates the original levels [max(MinLogSets, S),
	// MaxLogSets] for the blocks with id mod 2^S == t, as a compact
	// pass over tree-local IDs.
	trees []*Simulator

	missDM, missA []uint64
	accesses      uint64
}

// NewSharded builds a sharded LRU tree pass at shard level log (2^log
// trees). workers bounds the goroutines replaying substreams; 0 means
// GOMAXPROCS. Instrument and the pruning ablation switches are
// rejected: the sharded pass maintains no work counters.
func NewSharded(opt Options, log, workers int) (*Sharded, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.instrumented() {
		return nil, fmt.Errorf("lrutree: sharded pass is counter-free; Instrument and ablation switches need the monolithic pass")
	}
	if log < 0 || log > opt.MaxLogSets {
		return nil, fmt.Errorf("lrutree: shard level %d outside [0, MaxLogSets=%d]", log, opt.MaxLogSets)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sh := &Sharded{
		opt:     opt,
		log:     log,
		workers: workers,
		missDM:  make([]uint64, opt.Levels()),
		missA:   make([]uint64, opt.Levels()),
	}
	if log > opt.MinLogSets {
		shallowOpt := opt
		shallowOpt.MaxLogSets = log - 1
		var err error
		if sh.shallow, err = New(shallowOpt); err != nil {
			return nil, err
		}
	}
	treeOpt := opt
	treeOpt.MinLogSets = max(opt.MinLogSets-log, 0)
	treeOpt.MaxLogSets = opt.MaxLogSets - log
	treeOpt.BlockSize = opt.BlockSize << log
	sh.trees = make([]*Simulator, 1<<log)
	for t := range sh.trees {
		var err error
		if sh.trees[t], err = New(treeOpt); err != nil {
			return nil, err
		}
	}
	return sh, nil
}

// Options returns the pass configuration.
func (sh *Sharded) Options() Options { return sh.opt }

// ShardLog returns the shard level S.
func (sh *Sharded) ShardLog() int { return sh.log }

// Accesses returns the number of requests simulated.
func (sh *Sharded) Accesses() uint64 { return sh.accesses }

// Reset returns the pass to its freshly constructed state, reusing the
// shallow and per-tree arenas.
func (sh *Sharded) Reset() {
	if sh.shallow != nil {
		sh.shallow.Reset()
	}
	for _, tree := range sh.trees {
		tree.Reset()
	}
	clear(sh.missDM)
	clear(sh.missA)
	sh.accesses = 0
}

// SimulateStream replays a sharded block stream through the pass and
// stitches the per-level miss tables; see core.Sharded.SimulateStream
// (including its cancellation and panic-containment contract: ctx
// stops the pool at tree granularity and leaves the pass needing a
// Reset; a replay panic surfaces as a *pool.PanicError). The stream is
// only read, so one ShardStream may be shared by any number of
// concurrent passes. Repeated calls continue the pass (chunked replays
// accumulate); use Reset to start a fresh one.
func (sh *Sharded) SimulateStream(ctx context.Context, ss *trace.ShardStream) error {
	if ss.Log != sh.log {
		return fmt.Errorf("lrutree: stream sharded at level %d, pass expects %d", ss.Log, sh.log)
	}
	if ss.BlockSize != sh.opt.BlockSize {
		return fmt.Errorf("lrutree: stream materialized at block size %d, pass simulates %d",
			ss.BlockSize, sh.opt.BlockSize)
	}
	if ss.NumShards() != len(sh.trees) {
		return fmt.Errorf("lrutree: stream has %d shards, pass has %d trees", ss.NumShards(), len(sh.trees))
	}

	n := len(sh.trees)
	if sh.shallow != nil {
		n++
	}
	err := pool.Run(ctx, sh.workers, n, func(t int) error {
		if t == len(sh.trees) {
			return sh.shallow.SimulateStream(ss.Source)
		}
		return sh.trees[t].SimulateStream(&ss.Shards[t])
	})
	if err != nil {
		return err
	}

	// The component simulators' tables are cumulative across replays,
	// so the stitch recomputes from scratch — repeated SimulateStream
	// calls (chunked replays) stay consistent.
	clear(sh.missDM)
	clear(sh.missA)
	deepBase := 0
	var total uint64
	if sh.shallow != nil {
		deepBase = copy(sh.missDM, sh.shallow.missDM)
		copy(sh.missA, sh.shallow.missA)
		total = sh.shallow.counters.Accesses
	}
	for _, tree := range sh.trees {
		for l, m := range tree.missDM {
			sh.missDM[deepBase+l] += m
		}
		for l, m := range tree.missA {
			sh.missA[deepBase+l] += m
		}
		if sh.shallow == nil {
			total += tree.counters.Accesses
		}
	}
	sh.accesses = total
	return nil
}

// Results returns the stitched per-configuration statistics in the
// monolithic Results layout, with identical values by construction.
func (sh *Sharded) Results() []Result {
	return buildResults(sh.opt, sh.accesses, sh.missDM, sh.missA)
}

// SimulateSharded builds a sharded pass matching the stream's shard
// level, replays the stream and returns the pass.
func SimulateSharded(ctx context.Context, opt Options, ss *trace.ShardStream, workers int) (*Sharded, error) {
	sh, err := NewSharded(opt, ss.Log, workers)
	if err != nil {
		return nil, err
	}
	if err := sh.SimulateStream(ctx, ss); err != nil {
		return nil, err
	}
	return sh, nil
}
