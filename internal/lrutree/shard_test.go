package lrutree

import (
	"context"
	"fmt"
	"testing"

	"dew/internal/trace"
	"dew/internal/workload"
)

// runMonolithic drives the instrumented per-access path.
func runMonolithic(t *testing.T, opt Options, tr trace.Trace) *Simulator {
	t.Helper()
	s := mustSim(opt)
	for _, a := range tr {
		s.Access(a)
	}
	return s
}

// TestShardedEquivalence proves the sharded LRU tree pass bit-identical
// to the monolithic instrumented pass across every shard level,
// including S=0, S=MaxLogSets and MinLogSets>0 forests.
func TestShardedEquivalence(t *testing.T) {
	apps := []workload.App{workload.CJPEG, workload.G721Enc}
	shapes := []Options{
		{MaxLogSets: 6, Assoc: 4, BlockSize: 16},
		{MinLogSets: 2, MaxLogSets: 6, Assoc: 2, BlockSize: 8},
		{MinLogSets: 1, MaxLogSets: 5, Assoc: 8, BlockSize: 32},
		{MaxLogSets: 5, Assoc: 1, BlockSize: 4},
	}
	for _, app := range apps {
		tr := workload.Take(app.Generator(7), 25_000)
		for _, opt := range shapes {
			bs, err := tr.BlockStream(opt.BlockSize)
			if err != nil {
				t.Fatal(err)
			}
			want := runMonolithic(t, opt, tr)
			for log := 0; log <= opt.MaxLogSets; log++ {
				label := fmt.Sprintf("%s/min%d/A%d/B%d/S%d", app.Name, opt.MinLogSets, opt.Assoc, opt.BlockSize, log)
				ss, err := trace.ShardBlockStream(bs, log)
				if err != nil {
					t.Fatal(err)
				}
				sh, err := SimulateSharded(context.Background(), opt, ss, 4)
				if err != nil {
					t.Fatal(err)
				}
				wr, gr := want.Results(), sh.Results()
				if len(wr) != len(gr) {
					t.Fatalf("%s: %d results vs %d", label, len(wr), len(gr))
				}
				for i := range wr {
					if wr[i] != gr[i] {
						t.Errorf("%s: result %d: monolithic %+v, sharded %+v", label, i, wr[i], gr[i])
					}
				}
				if sh.Accesses() != uint64(len(tr)) {
					t.Errorf("%s: Accesses = %d, want %d", label, sh.Accesses(), len(tr))
				}
			}
		}
	}
}

// TestShardedReset reuses one sharded pass across replays.
func TestShardedReset(t *testing.T) {
	tr := workload.Take(workload.MPEG2Dec.Generator(4), 12_000)
	opt := Options{MaxLogSets: 6, Assoc: 4, BlockSize: 16}
	bs, err := tr.BlockStream(opt.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := trace.ShardBlockStream(bs, 2)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := SimulateSharded(context.Background(), opt, ss, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := sh.Results()
	for i := 0; i < 3; i++ {
		sh.Reset()
		if err := sh.SimulateStream(context.Background(), ss); err != nil {
			t.Fatal(err)
		}
		for j, r := range sh.Results() {
			if r != want[j] {
				t.Fatalf("replay %d: result %d = %+v, want %+v", i, j, r, want[j])
			}
		}
	}
}

// TestShardedRepeatedReplay replays the same shard stream twice without
// Reset (a chunked replay) and demands agreement with the monolithic
// simulator fed the stream twice.
func TestShardedRepeatedReplay(t *testing.T) {
	tr := workload.Take(workload.CJPEG.Generator(8), 10_000)
	opt := Options{MaxLogSets: 6, Assoc: 4, BlockSize: 16}
	bs, err := tr.BlockStream(opt.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := trace.ShardBlockStream(bs, 2)
	if err != nil {
		t.Fatal(err)
	}
	mono := mustSim(opt)
	sh, err := NewSharded(opt, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		if err := mono.SimulateStream(bs); err != nil {
			t.Fatal(err)
		}
		if err := sh.SimulateStream(context.Background(), ss); err != nil {
			t.Fatal(err)
		}
		wr, gr := mono.Results(), sh.Results()
		for i := range wr {
			if wr[i] != gr[i] {
				t.Errorf("round %d result %d: monolithic %+v, sharded %+v", round, i, wr[i], gr[i])
			}
		}
	}
}

// TestShardedRejects covers the guards.
func TestShardedRejects(t *testing.T) {
	opt := Options{MaxLogSets: 4, Assoc: 2, BlockSize: 16}
	if _, err := NewSharded(opt, 5, 0); err == nil {
		t.Error("shard level above MaxLogSets accepted")
	}
	inst := opt
	inst.Instrument = true
	if _, err := NewSharded(inst, 2, 0); err == nil {
		t.Error("instrumented sharded pass accepted")
	}
	abl := opt
	abl.DisableMRUCutoff = true
	if _, err := NewSharded(abl, 2, 0); err == nil {
		t.Error("ablated sharded pass accepted")
	}
}

// TestResetEquivalence replays on a Reset simulator vs a fresh one and
// asserts zero steady-state allocations — the lrutree half of the Reset
// satellite.
func TestResetEquivalence(t *testing.T) {
	tr := workload.Take(workload.CJPEG.Generator(9), 15_000)
	opt := Options{MaxLogSets: 7, Assoc: 4, BlockSize: 16}
	bs, err := tr.BlockStream(opt.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	reused := mustSim(opt)
	for round := 0; round < 3; round++ {
		if round > 0 {
			reused.Reset()
		}
		if err := reused.SimulateStream(bs); err != nil {
			t.Fatal(err)
		}
		fresh := mustSim(opt)
		if err := fresh.SimulateStream(bs); err != nil {
			t.Fatal(err)
		}
		fr, rr := fresh.Results(), reused.Results()
		for i := range fr {
			if fr[i] != rr[i] {
				t.Fatalf("round %d: result %d = %+v, want %+v", round, i, rr[i], fr[i])
			}
		}
	}
	avg := testing.AllocsPerRun(5, func() {
		reused.Reset()
		if err := reused.SimulateStream(bs); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("%v allocs per Reset+replay, want 0", avg)
	}
}
