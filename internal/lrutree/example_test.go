package lrutree_test

import (
	"fmt"
	"log"

	"dew/internal/lrutree"
	"dew/internal/trace"
)

// The LRU tree simulator covers every set count in one pass, like DEW,
// but exploits LRU-only properties (inclusion, MRU cut-off, same-block
// pruning).
func Example() {
	tr := trace.Trace{
		{Addr: 0}, {Addr: 64}, {Addr: 0}, {Addr: 128}, {Addr: 0},
	}
	sim, err := lrutree.Run(lrutree.Options{
		MinLogSets: 0, MaxLogSets: 1, Assoc: 2, BlockSize: 64,
	}, tr.NewSliceReader())
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range sim.Results() {
		fmt.Printf("%-21s misses=%d\n", res.Config, res.Misses)
	}
	// LRU keeps block 0 resident in the 2-way cache (it is always the
	// most recently used when pressure arrives); FIFO would evict it.

	// Output:
	// S=1 A=1 B=64 (64B)    misses=5
	// S=1 A=2 B=64 (128B)   misses=3
	// S=2 A=1 B=64 (128B)   misses=4
	// S=2 A=2 B=64 (256B)   misses=3
}
