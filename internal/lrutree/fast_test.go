package lrutree

import (
	"fmt"
	"testing"

	"dew/internal/trace"
)

// runInstrumented drives the single-access instrumented path.
func runInstrumented(t *testing.T, opt Options, tr trace.Trace) *Simulator {
	t.Helper()
	s := mustSim(opt)
	for _, a := range tr {
		s.Access(a)
	}
	return s
}

// assertSameResults fails unless the two simulators agree bit for bit on
// every configuration's outcome and on the per-level miss splits.
func assertSameResults(t *testing.T, label string, want, got *Simulator) {
	t.Helper()
	wr, gr := want.Results(), got.Results()
	if len(wr) != len(gr) {
		t.Fatalf("%s: %d results vs %d", label, len(wr), len(gr))
	}
	for i := range wr {
		if wr[i] != gr[i] {
			t.Errorf("%s: result %d: instrumented %+v, fast %+v", label, i, wr[i], gr[i])
		}
	}
	for i := range want.levels {
		if want.missDM[i] != got.missDM[i] {
			t.Errorf("%s: level %d missDM: instrumented %d, fast %d",
				label, i, want.missDM[i], got.missDM[i])
		}
		if want.missA[i] != got.missA[i] {
			t.Errorf("%s: level %d missA: instrumented %d, fast %d",
				label, i, want.missA[i], got.missA[i])
		}
	}
}

var fastShapes = []Options{
	{MaxLogSets: 6, Assoc: 4, BlockSize: 16},
	{MaxLogSets: 4, Assoc: 8, BlockSize: 4},
	{MinLogSets: 2, MaxLogSets: 7, Assoc: 2, BlockSize: 32},
	{MaxLogSets: 5, Assoc: 1, BlockSize: 8},
	{MinLogSets: 1, MaxLogSets: 4, Assoc: 16, BlockSize: 4},
}

// TestAccessBatchEquivalence checks the counter-free fast path against
// the instrumented path across pass shapes, including forests.
func TestAccessBatchEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		tr := streakyTrace(20_000, 1<<13, seed)
		for _, opt := range fastShapes {
			label := fmt.Sprintf("seed%d/min%d/A%d/B%d", seed, opt.MinLogSets, opt.Assoc, opt.BlockSize)
			want := runInstrumented(t, opt, tr)

			fast := mustSim(opt)
			fast.AccessBatch(tr)
			if got := fast.Counters().Accesses; got != uint64(len(tr)) {
				t.Errorf("%s: fast path Accesses = %d, want %d", label, got, len(tr))
			}
			assertSameResults(t, label, want, fast)

			// Chunked delivery cannot change results.
			split := mustSim(opt)
			for i := 0; i < len(tr); i += 997 {
				end := i + 997
				if end > len(tr) {
					end = len(tr)
				}
				split.AccessBatch(tr[i:end])
			}
			assertSameResults(t, label+"/chunked", want, split)
		}
	}
}

// TestSimulateStreamEquivalence checks the stream entry point — run
// weights folded, mid-run chunk starts — against the instrumented path.
func TestSimulateStreamEquivalence(t *testing.T) {
	tr := streakyTrace(20_000, 1<<13, 5)
	for _, opt := range fastShapes {
		label := fmt.Sprintf("min%d/A%d/B%d", opt.MinLogSets, opt.Assoc, opt.BlockSize)
		bs, err := tr.BlockStream(opt.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		want := runInstrumented(t, opt, tr)

		fast := mustSim(opt)
		if err := fast.SimulateStream(bs); err != nil {
			t.Fatal(err)
		}
		if got := fast.Counters().Accesses; got != uint64(len(tr)) {
			t.Errorf("%s: stream Accesses = %d, want %d", label, got, len(tr))
		}
		assertSameResults(t, label, want, fast)

		// Cut runs of weight > 1 in half: later chunks start mid-run.
		var ids []uint64
		var runs []uint32
		for i, id := range bs.IDs {
			w := bs.Runs[i]
			if w > 1 {
				ids = append(ids, id, id)
				runs = append(runs, w/2, w-w/2)
			} else {
				ids = append(ids, id)
				runs = append(runs, w)
			}
		}
		split := mustSim(opt)
		split.AccessRuns(ids, runs)
		assertSameResults(t, label+"/mid-run", want, split)
	}
}

// TestAccessRunsInstrumented checks the arithmetic fold on the counted
// path and the expansion under ablations.
func TestAccessRunsInstrumented(t *testing.T) {
	tr := streakyTrace(10_000, 1<<12, 8)
	mods := []struct {
		name string
		mod  func(*Options)
	}{
		{"instrument", func(o *Options) { o.Instrument = true }},
		{"noSameBlock", func(o *Options) { o.DisableSameBlock = true }},
		{"noMRUCutoff", func(o *Options) { o.DisableMRUCutoff = true }},
	}
	base := Options{MaxLogSets: 5, Assoc: 4, BlockSize: 16}
	bs, err := tr.BlockStream(base.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mods {
		opt := base
		m.mod(&opt)
		want := runInstrumented(t, opt, tr)
		got := mustSim(opt)
		if err := got.SimulateStream(bs); err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, m.name, want, got)
		if want.Counters() != got.Counters() {
			t.Errorf("%s: stream counters %+v, per-access counters %+v",
				m.name, got.Counters(), want.Counters())
		}
	}
}

// TestFastEntryPointsInterleaved mixes Access, AccessBatch and
// AccessRuns on one simulator; the shared same-block memo must keep them
// coherent.
func TestFastEntryPointsInterleaved(t *testing.T) {
	tr := streakyTrace(9_000, 1<<12, 13)
	opt := Options{MaxLogSets: 6, Assoc: 4, BlockSize: 16}
	want := runInstrumented(t, opt, tr)

	third := len(tr) / 3
	mixed := mustSim(opt)
	mixed.AccessBatch(tr[:third])
	mid, err := tr[third : 2*third].BlockStream(opt.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := mixed.SimulateStream(mid); err != nil {
		t.Fatal(err)
	}
	for _, a := range tr[2*third:] {
		mixed.Access(a)
	}
	assertSameResults(t, "batch+stream+access", want, mixed)
	if got := mixed.Counters().Accesses; got != uint64(len(tr)) {
		t.Errorf("Accesses = %d, want %d", got, len(tr))
	}
}

// TestSimulateStreamRejectsBlockMismatch mirrors the core's guard.
func TestSimulateStreamRejectsBlockMismatch(t *testing.T) {
	bs, err := trace.Trace{{Addr: 0}}.BlockStream(16)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSim(Options{MaxLogSets: 3, Assoc: 2, BlockSize: 4})
	if err := s.SimulateStream(bs); err == nil {
		t.Fatal("block-size mismatch accepted")
	}
}

// TestSimulateBatchMatchesSimulate runs the fast reader-draining loop
// against the instrumented one.
func TestSimulateBatchMatchesSimulate(t *testing.T) {
	tr := randomTrace(8_000, 1<<12, 21)
	opt := Options{MaxLogSets: 6, Assoc: 4, BlockSize: 8}
	want := mustSim(opt)
	if err := want.Simulate(tr.NewSliceReader()); err != nil {
		t.Fatal(err)
	}
	got := mustSim(opt)
	if err := got.SimulateBatch(tr.NewSliceReader()); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "SimulateBatch", want, got)
}

// FuzzFastEquivalence fuzzes the lrutree fast path (batch and stream)
// against the instrumented path.
func FuzzFastEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2), uint8(2), uint8(4), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0}, uint8(0), uint8(0), uint8(1), uint8(2))
	f.Add([]byte{9, 9, 1, 1, 9, 9, 1, 1, 2, 2}, uint8(3), uint8(1), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, logAssoc, logBlock, maxLog, minLog uint8) {
		if len(raw) == 0 || len(raw) > 4096 {
			return
		}
		opt := Options{
			MinLogSets: int(minLog % 4),
			MaxLogSets: int(minLog%4) + int(maxLog%5),
			Assoc:      1 << (logAssoc % 4),
			BlockSize:  1 << (logBlock % 4),
		}
		tr := make(trace.Trace, 0, len(raw)/2+1)
		for i := 0; i+1 < len(raw); i += 2 {
			tr = append(tr, trace.Access{Addr: uint64(raw[i])<<3 | uint64(raw[i+1])&7})
		}
		if len(tr) == 0 {
			return
		}
		inst := mustSim(opt)
		for _, a := range tr {
			inst.Access(a)
		}

		batch := mustSim(opt)
		batch.AccessBatch(tr)
		assertSameResults(t, "batch", inst, batch)

		bs, err := tr.BlockStream(opt.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		stream := mustSim(opt)
		if err := stream.SimulateStream(bs); err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "stream", inst, stream)
	})
}
