module dew

go 1.24.0
