// Package dew is a from-scratch Go reproduction of "DEW: A Fast Level 1
// Cache Simulation Approach for Embedded Processors with FIFO Replacement
// Policy" (Haque, Peddersen, Janapsatya, Parameswaran — DATE 2010).
//
// The library simulates many level-1 cache configurations exactly, in a
// single pass over a memory-address trace, for caches using the FIFO
// replacement policy. See README.md for the architecture overview,
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record. The root package carries the repository-wide
// benchmark harness (bench_test.go), one benchmark per table and figure
// of the paper's evaluation.
package dew
