// Package dew is a from-scratch Go reproduction of "DEW: A Fast Level 1
// Cache Simulation Approach for Embedded Processors with FIFO Replacement
// Policy" (Haque, Peddersen, Janapsatya, Parameswaran — DATE 2010).
//
// The library simulates many level-1 cache configurations exactly, in a
// single pass over a memory-address trace, for caches using the FIFO
// replacement policy. See README.md for the architecture overview and
// package map. The root package carries the repository-wide benchmark
// harness (bench_test.go), one benchmark per table and figure of the
// paper's evaluation.
//
// # Batching, streams and parallelism
//
// The pipeline moves accesses in bulk end to end. Every trace source —
// the in-memory trace, the .din text and DTB1 binary decoders, the
// workload generator stream — implements trace.BatchReader, delivering
// trace.DefaultBatchSize accesses per call; trace.Batch adapts any plain
// Reader.
//
// Above batching sits the columnar stream frontend: trace.BlockStream
// materializes a trace into run-length-compressed columns (block IDs
// plus run weights, consecutive same-block accesses collapsed). The
// trace is decoded exactly once, at the finest block size a run needs;
// every coarser block size is fold-derived from that stream
// (trace.FoldBlockStream / FoldLadder: halve every run ID and merge the
// now-adjacent equal-ID runs — O(runs) per doubling, bit-identical to a
// direct materialization at the coarser size, uint32 run-overflow
// splits included). A materialized or folded stream is immutable and
// shared — the sweep and explore layers hand one stream to every
// simulator pass, worker and reference replay that needs that block
// size, so the per-access decode and shift work is paid once per run,
// not once per pass and not even once per block size.
// Replaying weighted runs is exact: a repeated block address is a
// most-recently-accessed hit in every configuration containing it
// (Property 2 in the DEW core, same-block pruning in the LRU tree, a
// plain hit in the reference simulator), and such hits change no
// replacement state, so run weights fold arithmetically into the access
// counters.
//
// On the consuming side core.Simulator offers equivalent paths with
// different instrumentation: the instrumented Access/Simulate path that
// maintains the full Table 3/4 counter set, the counter-free
// AccessBatch/SimulateBatch fast path, and the fastest
// AccessRuns/SimulateStream stream path, which consumes block IDs
// directly — no per-access struct loads or shifts — and sheds the
// wave-pointer and MRE bookkeeping (work-saving state, not result
// state, reset to a sound "unknown" afterwards). All paths are
// bit-identical in results, verified on every sweep.RunCell and fuzzed
// against each other (≥1.3× the batched path and ≥2× the seed's
// single-access throughput on the sequential-fetch workloads; the
// trajectory is recorded in BENCH_core.json by scripts/bench.sh).
// lrutree mirrors the same instrumented/fast/stream split for the LRU
// tree.
//
// Independent passes parallelize above the core: sweep.Runner.Workers
// spreads reference passes and whole cells across a worker pool with
// deterministic result ordering, and package explore does the same for
// design-space DEW passes — exactness verification is unaffected because
// every pass replays the same materialized read-only stream; only wall
// times are scheduling-sensitive (use one worker for timing-faithful
// Table 3 runs).
//
// One pass also parallelizes *internally*, and exactly so, via set
// sharding: below a shard level S the simulation tree is a forest of
// 2^S trees that never share a node (a block address b walks only the
// tree b mod 2^S), and every level of a pass is independently the exact
// simulation of its own configuration. trace.ShardStream partitions a
// block stream once into 2^S re-run-compressed substreams, and
// core.Sharded (mirrored by lrutree.Sharded) replays them — one shallow
// pass over the levels above S plus one compact tree pass per shard,
// fanned across goroutines — stitching per-level miss tables back into
// results bit-identical to the monolithic pass. refsim.Sharded does the
// same for the reference simulator: a configuration with 2^L sets
// (L ≥ S) is the disjoint union of 2^S sub-caches, each replaying its
// substream independently under FIFO/LRU (Random, whose replacement
// stream is global, falls back to the exact monolithic replay).
// sweep.Runner.Shards cross-checks both identities — sharded DEW
// against the instrumented pass, sharded reference against the
// monolithic reference — on every cell; the -shards CLI flag exposes
// sharding in dewsim, refsim, experiments and explore, with 0 = auto
// (per-cell from stream statistics in the sweep, see
// sweep.AutoShardsStream; GOMAXPROCS elsewhere). Simulator.Reset (all
// three simulators) reuses the arena allocations across repeated
// passes, so benchmark iterations, sweep cells and per-shard replays
// run allocation-free in steady state.
//
// # Pipeline architecture: result cache? → store? → decode once → fold → shard → engine → stitch
//
// A fully sharded run never materializes the raw trace and never walks
// it twice. The ingest pipeline (trace.IngestShards / IngestDinShards /
// IngestFileShards) decodes the trace in chunks — for .din text the
// decode itself is chunk-parallel, the byte stream cut at line
// boundaries and parsed by workers — run-compresses every chunk in
// parallel, and feeds per-shard BlockStream appenders directly, with a
// serial boundary-merge step applying the exact per-access run
// semantics where chunks meet. The resulting parent stream and shard
// partition are bit-identical — including uint32 run-overflow splits —
// to the serial materialize-then-shard path (equivalence- and
// fuzz-tested), so every downstream exactness argument carries over
// unchanged.
//
// The block-size axis of a design space rides on that single decode:
// explore.Run ingests the trace once at the space's finest block size
// and fold-derives every coarser rung (re-sharding each folded stream
// with the O(runs) ShardBlockStream walk when sharding), and
// sweep.RunCells shares one folded ladder per trace across its cells —
// both frontends read the raw trace exactly once per run no matter how
// many block sizes the space spans, and both record the provenance
// (explore.Result.Decodes/Folds, sweep.Cell.StreamFolded).
//
// # The streaming tier: pipelined replay in bounded memory
//
// For traces too large to materialize — or whenever decode latency
// should overlap simulation — the same pipeline runs span by span:
// trace.StreamSpans (and StreamDinSpans / StreamFileSpans) delivers
// the run-compressed stream as a bounded, backpressured channel of
// spans, each span a self-contained BlockStream slice with the exact
// boundary-merge semantics applied where chunks meet, so the
// concatenation of the spans is bit-identical — run splits, kind
// channel and uint32 overflow handling included — to the materialized
// stream (FuzzSpanEquivalence holds the two shapes together). The
// pipeline enforces SpanOptions.MemBytes as a hard bound on resident
// decoded spans (ResidentBound reports it; the replay benchmarks
// record it as peak_resident_bytes), overlaps the chunk-parallel
// decode with the consumer, honours context cancellation, and can
// checkpoint at span boundaries (CheckpointEvery / ResumeStreamSpans,
// same DCP1 format as the ingest tier) for exact resume. The
// incremental trace.LadderFolder folds each arriving span to every
// rung of a block-size ladder on the fly, so the whole design space
// still rides one decode; engines accumulate spans through the same
// SimulateStream seam (engine.ReplayPipeline / explore's streamed
// tier), with results bit-identical to the phased
// materialize-then-replay path. The CLIs expose the tier as
// -stream-mem BYTES (0 = materialize; mutually exclusive with -shards,
// whose partitions need the whole stream resident), a cold streamed
// pass publishes the finest rung to the artifact store without
// re-buffering (store.StreamPut), and provenance records the mode and
// the enforced bound end to end (explore.Result.Streamed /
// StreamPeakBytes, sweep.Cell likewise, the CLI mode lines).
// BenchmarkReplayStreamed vs BenchmarkReplayMaterialized tracks the
// overlap's speedup (speedup_streamed_over_phased) in BENCH_core.json.
//
// # Kind-preserving streams: write-policy and energy axes
//
// The stream's run compression drops request kinds by default — no
// replacement policy consults them — but the pipeline can carry them:
// trace.MaterializeBlockStreamWithKinds and IngestShardsWithKinds
// populate an optional Kinds column (trace.KindRun: per-kind weights
// plus the leading-store count and first non-store kind of each run)
// whose ID and run columns are bit-identical to the kind-free stream,
// and every stage — fold, shard, chunked ingest with its boundary
// merges and uint32 overflow splits — preserves it exactly (fuzzed
// alongside the kind-free invariants). A write-policy reference replay
// (refsim.NewSim / NewShardedSim, the write-back/write-through ×
// write-allocate/no-write-allocate axes) folds each run from its
// KindRun record in O(1): a run is resident-at-head, an installing
// miss, or a bypassing miss (no-write-allocate leading stores), and in
// each shape the per-kind statistics, dirty-bit state and memory
// traffic are arithmetic in the weights — bit-identical, per
// statistic and per traffic counter, to expanding the run per access
// (equivalence- and fuzz-tested over every policy combination, and
// re-verified at runtime by sweep.RunWriteCell). The same channel
// feeds the energy model's read/write split: per-kind totals are a
// trace property (every configuration sees the same request mix), so
// explore -kinds prices the store share of the whole design space from
// one stream (energy.TotalSplit / RankSplit) with no per-configuration
// kind bookkeeping. BenchmarkRefStreamWrite vs BenchmarkRefAccessWrite
// tracks the stream-over-per-access speedup and the kind channel's
// bytes-per-access footprint in BENCH_core.json.
//
// # The artifact store: zero-decode, zero-simulation warm paths
//
// The decode stage itself sits behind an optional content-addressed
// artifact store (package store): the finest-rung stream a run
// materializes is published as a self-describing DBS1 blob
// (trace.BlockStream.MarshalBinary / WriteTo, CRC-32-sealed, sharing
// its column codec with the DCP1 checkpoint format), keyed by the
// SHA-256 of the trace's content identity plus the block size, kind
// flag and format version. A later run with the same identity loads
// the stream in O(runs) — zero trace decodes, results bit-identical —
// and every derived artifact (fold ladder, shard partition) is
// re-derived from the loaded stream at stream speed. Entries are
// written atomically (temp file + rename), deduplicated across
// concurrent runs by a single-flight gate, evicted
// least-recently-used under a size cap, and verified on load:
// a corrupt or truncated entry is quarantined and the run falls back
// to a fresh decode transparently.
//
// Above the stream tier sits a result tier under the same key scheme:
// a completed pass's counter tables are published as a DRS1 blob
// (same uvarint column codec, CRC-32-sealed, the engine name and
// config axes echoed inside the blob and verified on load), keyed by
// store.ResultKey — the SHA-256 of the stream key × the engine name ×
// the full config-axis string from engine.Spec.CacheKey, so any axis
// change (sets range, associativity, block size, policy, write axes)
// is a different key, while scheduling knobs like worker count are
// not. The sweep and explore layers schedule deltas against it:
// sweep.RunCells / RunWriteCell and explore.Run probe the result tier
// per cell first, simulate only the missing cells, and publish on
// completion — a fully-warm run performs zero engine simulations and
// zero trace decodes and emits byte-identical tables (recorded wall
// times ride along as cached scalars). Warm cells are cross-checked
// against one sampled live re-simulation per run (Runner.NoWarmCheck
// opts out), and provenance is recorded end to end
// (Cell.ResultCacheHit, Result.CellsSimulated/CellsCached). Both blob
// kinds share one MaxBytes budget and one LRU eviction, quarantine
// and `dew cache stats|gc|clear` accounting, broken out per kind; an
// in-process LRU of decoded streams (Options.MemBytes, enabled by the
// CLIs) additionally serves repeat materializations within a process
// without touching disk. explore.Run (Request.Cache / SourceID) and
// the sweep runner (sweep.Runner.Cache) consult the store before
// decoding or simulating; the CLIs expose it as -cache DIR (or
// DEW_CACHE). BenchmarkExploreWarm vs BenchmarkExploreCold tracks the
// stream tier's warm-over-cold speedup, BenchmarkStreamLoad the load
// throughput, and BenchmarkSweepWarm vs BenchmarkSweepCold the result
// tier's warm-over-cold sweep speedup and warm cell-serve throughput
// in BENCH_core.json.
//
// Simulation itself runs behind the engine seam: package engine wraps
// the three simulators (dew, lrutree, ref) in one interface —
// SimulateStream / SimulateSharded / Reset / Results — resolved by
// name from a registry. The sweep, explore and cli layers each drive
// every pass through a single engine-dispatch site, so registering a
// new simulator or policy variant makes it drivable everywhere with no
// new plumbing. Engines stitch their sharded replays back into
// results bit-identical to the monolithic ones; the design-space
// layers verify that identity at runtime rather than assume it.
package dew
