// Package dew is a from-scratch Go reproduction of "DEW: A Fast Level 1
// Cache Simulation Approach for Embedded Processors with FIFO Replacement
// Policy" (Haque, Peddersen, Janapsatya, Parameswaran — DATE 2010).
//
// The library simulates many level-1 cache configurations exactly, in a
// single pass over a memory-address trace, for caches using the FIFO
// replacement policy. See README.md for the architecture overview,
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record. The root package carries the repository-wide
// benchmark harness (bench_test.go), one benchmark per table and figure
// of the paper's evaluation.
//
// # Batching and parallelism
//
// The pipeline moves accesses in bulk end to end. Every trace source —
// the in-memory trace, the .din text and DTB1 binary decoders, the
// workload generator stream — implements trace.BatchReader, delivering
// trace.DefaultBatchSize accesses per call; trace.Batch adapts any plain
// Reader. On the consuming side core.Simulator offers two equivalent
// paths: the instrumented Access/Simulate path that maintains the full
// Table 3/4 counter set, and the counter-free AccessBatch/SimulateBatch
// fast path, bit-identical in results and verified so on every
// sweep.RunCell (≥1.5× the seed's single-access throughput; the
// trajectory is recorded in BENCH_core.json by scripts/bench.sh).
// Independent passes parallelize above the core: sweep.Runner.Workers
// spreads reference passes and whole cells across a worker pool with
// deterministic result ordering, and package explore does the same for
// design-space DEW passes — exactness verification is unaffected because
// every pass replays the same materialized read-only trace; only wall
// times are scheduling-sensitive (use one worker for timing-faithful
// Table 3 runs).
package dew
