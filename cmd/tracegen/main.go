// Command tracegen — see dew/internal/cli.TraceGen for the
// implementation and flag documentation.
package main

import "dew/internal/cli"

func main() { cli.Main("tracegen", cli.TraceGen) }
