// Command dew — umbrella maintenance tool; see dew/internal/cli.Dew
// for the subcommands (currently the artifact cache: stats, gc,
// clear).
package main

import "dew/internal/cli"

func main() { cli.Main("dew", cli.Dew) }
