// Command analyze — see dew/internal/cli.Analyze for the implementation
// and flag documentation.
package main

import (
	"fmt"
	"os"

	"dew/internal/cli"
)

func main() {
	err := cli.Analyze(cli.Env{Stdout: os.Stdout, Stderr: os.Stderr}, os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "analyze:", err)
	if cli.IsUsage(err) {
		os.Exit(2)
	}
	os.Exit(1)
}
