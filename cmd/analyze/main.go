// Command analyze — see dew/internal/cli.Analyze for the implementation
// and flag documentation.
package main

import "dew/internal/cli"

func main() { cli.Main("analyze", cli.Analyze) }
