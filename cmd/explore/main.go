// Command explore — see dew/internal/cli.Explore for the implementation
// and flag documentation.
package main

import "dew/internal/cli"

func main() { cli.Main("explore", cli.Explore) }
