// Command dinero is a Dinero IV-style front end over the reference
// simulator — see dew/internal/cli.Dinero for the flag documentation.
package main

import (
	"fmt"
	"os"

	"dew/internal/cli"
)

func main() {
	err := cli.Dinero(cli.Env{Stdout: os.Stdout, Stderr: os.Stderr}, os.Stdin, os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "dinero:", err)
	if cli.IsUsage(err) {
		os.Exit(2)
	}
	os.Exit(1)
}
