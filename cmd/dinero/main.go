// Command dinero is a Dinero IV-style front end over the reference
// simulator — see dew/internal/cli.Dinero for the flag documentation.
package main

import (
	"context"
	"os"

	"dew/internal/cli"
)

func main() {
	cli.Main("dinero", func(ctx context.Context, env cli.Env, args []string) error {
		return cli.Dinero(ctx, env, os.Stdin, args)
	})
}
