// Command dewsim — see dew/internal/cli.DewSim for the implementation
// and flag documentation.
package main

import "dew/internal/cli"

func main() { cli.Main("dewsim", cli.DewSim) }
