// Command experiments — see dew/internal/cli.Experiments for the
// implementation and flag documentation.
package main

import "dew/internal/cli"

func main() { cli.Main("experiments", cli.Experiments) }
