// Command refsim — see dew/internal/cli.RefSim for the implementation
// and flag documentation. One configuration per run, Dinero-style; with
// -shards ≥ 2 (0 = auto) the replay runs the sharded reference engine
// over set-substreams built by the decode → shard ingest pipeline.
package main

import (
	"fmt"
	"os"

	"dew/internal/cli"
)

func main() {
	err := cli.RefSim(cli.Env{Stdout: os.Stdout, Stderr: os.Stderr}, os.Args[1:])
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "refsim:", err)
	if cli.IsUsage(err) {
		os.Exit(2)
	}
	os.Exit(1)
}
