// Command refsim — see dew/internal/cli.RefSim for the implementation
// and flag documentation. One configuration per run, Dinero-style; with
// -shards ≥ 2 (0 = auto) the replay runs the sharded reference engine
// over set-substreams built by the decode → shard ingest pipeline.
package main

import "dew/internal/cli"

func main() { cli.Main("refsim", cli.RefSim) }
