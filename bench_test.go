package dew

// One benchmark per table and figure of the paper's evaluation section,
// plus ablation benchmarks for the DEW properties and the perf
// trajectory of the access pipeline (single vs batch vs stream; see
// README.md).
// The figure benchmarks report the paper's derived metrics
// (speedup, comparison reduction) via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every headline number in
// miniature. cmd/experiments produces the full tables.

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"unsafe"

	"dew/internal/cache"
	"dew/internal/core"
	"dew/internal/engine"
	"dew/internal/explore"
	"dew/internal/lrutree"
	"dew/internal/refsim"
	"dew/internal/store"
	"dew/internal/sweep"
	"dew/internal/trace"
	"dew/internal/workload"
)

// benchRequests keeps individual benchmark iterations fast while large
// enough to exercise every property; cmd/experiments runs full scale.
const benchRequests = 100_000

// benchMaxLog bounds set counts at 2^10 in the benches (the paper's 2^14
// is exercised by cmd/experiments and TestPaperScaleOptions).
const benchMaxLog = 10

var benchTraces = map[string]trace.Trace{}

func benchTrace(b *testing.B, app workload.App) trace.Trace {
	b.Helper()
	tr, ok := benchTraces[app.Name]
	if !ok {
		tr = workload.Take(app.Generator(1), benchRequests)
		benchTraces[app.Name] = tr
	}
	return tr
}

// BenchmarkTable1ConfigSpace measures enumerating the 525-configuration
// parameter space of Table 1.
func BenchmarkTable1ConfigSpace(b *testing.B) {
	space := cache.PaperSpace()
	for i := 0; i < b.N; i++ {
		cfgs := space.Configs()
		if len(cfgs) != 525 {
			b.Fatalf("got %d configs", len(cfgs))
		}
	}
}

// BenchmarkTable2TraceGeneration measures the synthetic Mediabench trace
// generators that stand in for Table 2's SimpleScalar traces.
func BenchmarkTable2TraceGeneration(b *testing.B) {
	for _, app := range workload.Apps() {
		b.Run(app.Name, func(b *testing.B) {
			g := app.Generator(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Next()
			}
		})
	}
}

// BenchmarkTable3DEW measures the DEW side of Table 3: one single-pass
// simulation of all set counts for each (app, block, assoc) cell.
func BenchmarkTable3DEW(b *testing.B) {
	for _, app := range workload.Apps() {
		for _, block := range []int{4, 16, 64} {
			for _, assoc := range []int{4, 8, 16} {
				name := fmt.Sprintf("%s/B%d/A%d", app.Name, block, assoc)
				b.Run(name, func(b *testing.B) {
					tr := benchTrace(b, app)
					opt := core.Options{MaxLogSets: benchMaxLog, Assoc: assoc, BlockSize: block}
					b.ResetTimer()
					var cmps uint64
					for i := 0; i < b.N; i++ {
						sim := core.MustNew(opt)
						if err := sim.Simulate(tr.NewSliceReader()); err != nil {
							b.Fatal(err)
						}
						cmps = sim.Counters().TagComparisons
					}
					b.ReportMetric(float64(cmps)/float64(len(tr)), "cmp/access")
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr)), "ns/access")
				})
			}
		}
	}
}

// benchAccessOpt is the pass shape the core fast-path benchmarks share:
// one representative Table 3 cell.
var benchAccessOpt = core.Options{MaxLogSets: benchMaxLog, Assoc: 4, BlockSize: 16}

// benchAccessApps are the workloads the perf trajectory is tracked on.
var benchAccessApps = []workload.App{workload.CJPEG, workload.G721Dec}

// BenchmarkAccessSingle measures the single-access pipeline exactly as
// the seed ran it: one interface-dispatched Reader.Next call plus one
// fully instrumented Access call per request. Compare with
// BenchmarkAccessBatch; the ns/access pair is the perf trajectory
// scripts/bench.sh records in BENCH_core.json.
func BenchmarkAccessSingle(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			tr := benchTrace(b, app)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim := core.MustNew(benchAccessOpt)
				var r trace.Reader = tr.NewSliceReader()
				for {
					a, err := r.Next()
					if err != nil {
						break
					}
					sim.Access(a)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr)), "ns/access")
		})
	}
}

// BenchmarkAccessBatch measures the counter-free batched fast path over
// the same workloads and pass shape as BenchmarkAccessSingle. The
// simulator is built once and Reset between iterations — the arenas are
// reused, so the allocs/op column doubles as the zero-steady-state-
// allocation regression check.
func BenchmarkAccessBatch(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			tr := benchTrace(b, app)
			sim := core.MustNew(benchAccessOpt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Reset()
				sim.AccessBatch(tr)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr)), "ns/access")
		})
	}
}

// BenchmarkAccessStream measures the run-compressed stream fast path
// over the same workloads and pass shape as BenchmarkAccessBatch. The
// stream is materialized once outside the timed region — exactly how
// the sweep and explore layers amortize it across a whole design space —
// and the addr/run metric records the measured run-compression ratio.
// Like the batch benchmark, the simulator is Reset per iteration, so
// steady-state iterations allocate nothing.
func BenchmarkAccessStream(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			tr := benchTrace(b, app)
			bs, err := tr.BlockStream(benchAccessOpt.BlockSize)
			if err != nil {
				b.Fatal(err)
			}
			sim := core.MustNew(benchAccessOpt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Reset()
				if err := sim.SimulateStream(bs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr)), "ns/access")
			b.ReportMetric(bs.CompressionRatio(), "addr/run")
		})
	}
}

// BenchmarkAccessSharded measures the set-sharded parallel pass at
// increasing fan-outs against the same workloads, pass shape and
// underlying stream as BenchmarkAccessStream (whose single-thread
// ns/access is the baseline for the shard speedup curves bench.sh
// records). The shard partition is materialized once outside the timed
// region, like the stream; the pass is built once per fan-out and Reset
// between iterations. Fan-out only helps with cores to spread across —
// on a single-core machine the curve records the (small) coordination
// overhead instead.
func BenchmarkAccessSharded(b *testing.B) {
	for _, app := range benchAccessApps {
		tr := benchTrace(b, app)
		bs, err := tr.BlockStream(benchAccessOpt.BlockSize)
		if err != nil {
			b.Fatal(err)
		}
		for _, shards := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/S%d", app.Name, shards), func(b *testing.B) {
				log := trace.ShardLog(shards, benchAccessOpt.MaxLogSets)
				ss, err := trace.ShardBlockStream(bs, log)
				if err != nil {
					b.Fatal(err)
				}
				sh, err := core.NewSharded(benchAccessOpt, log, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sh.Reset()
					if err := sh.SimulateStream(context.Background(), ss); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr)), "ns/access")
				b.ReportMetric(float64(bs.Accesses)/float64(ss.Runs()), "addr/shardrun")
			})
		}
	}
}

// benchFoldBlocks is the block ladder the fold benchmarks walk; the
// first entry is the single decode rung, the rest are fold-derived.
var benchFoldBlocks = []int{4, 8, 16, 32, 64}

// BenchmarkFoldLadder measures deriving every coarser block size of the
// ladder from one stream at the finest size — what the design-space
// frontends (explore.Run, sweep.RunCells) now do instead of re-decoding
// the trace once per block size. The base stream is materialized once
// outside the timed region (that single decode is the whole ladder's
// trace cost); each iteration folds the full ladder through reusable
// destinations, so steady state allocates nothing. ns/access divides by
// the trace length — compare BenchmarkDecodeLadder, the deleted
// decode-per-block-size baseline over the same sizes — and each rung's
// run-compression ratio is reported as addr/run/B<size>
// (scripts/bench.sh records both the speedup and the per-step
// compression in BENCH_core.json).
func BenchmarkFoldLadder(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			tr := benchTrace(b, app)
			base, err := tr.BlockStream(benchFoldBlocks[0])
			if err != nil {
				b.Fatal(err)
			}
			rungs := make([]*trace.BlockStream, len(benchFoldBlocks)-1)
			for i := range rungs {
				rungs[i] = &trace.BlockStream{}
			}
			foldAll := func() {
				cur := base
				for _, dst := range rungs {
					cur = trace.FoldBlockStreamInto(dst, cur)
				}
			}
			foldAll() // size the destinations once
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				foldAll()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr)), "ns/access")
			for _, dst := range rungs {
				b.ReportMetric(dst.CompressionRatio(), fmt.Sprintf("addr/run/B%d", dst.BlockSize))
			}
		})
	}
}

// BenchmarkDecodeLadder is BenchmarkFoldLadder's baseline: the coarser
// block sizes of the same ladder materialized by separate full decodes
// of the in-memory trace — one O(accesses) pass per block size, the way
// explore.Run and sweep.RunCells built their streams before folding.
func BenchmarkDecodeLadder(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			tr := benchTrace(b, app)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, block := range benchFoldBlocks[1:] {
					if _, err := tr.BlockStream(block); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr)), "ns/access")
		})
	}
}

// benchDinTexts caches each workload's .din encoding for the ingest
// benchmarks.
var benchDinTexts = map[string][]byte{}

func benchDinText(b *testing.B, app workload.App) []byte {
	b.Helper()
	text, ok := benchDinTexts[app.Name]
	if !ok {
		var buf bytes.Buffer
		w := trace.NewDinWriter(&buf)
		for _, a := range benchTrace(b, app) {
			if err := w.WriteAccess(a); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		text = buf.Bytes()
		benchDinTexts[app.Name] = text
	}
	return text
}

// benchIngestLog is the shard level the ingest benchmarks build (8
// substreams, the widest fan-out the shard benchmarks track).
const benchIngestLog = 3

// BenchmarkIngestShards measures the decode → shard ingest pipeline on
// .din text: chunk-parallel parsing and run compression feeding
// per-shard appenders, producing the parent stream and its 2^3-shard
// partition in one pass. blocks/s is the end-to-end decode→appender
// throughput (block references ingested per second) scripts/bench.sh
// records per workload in BENCH_core.json; compare
// BenchmarkIngestSerial, the materialize-then-shard serial path over
// the same bytes.
func BenchmarkIngestShards(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			text := benchDinText(b, app)
			var accesses uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ss, err := trace.IngestDinShards(context.Background(), bytes.NewReader(text), benchAccessOpt.BlockSize, benchIngestLog, 0)
				if err != nil {
					b.Fatal(err)
				}
				accesses = ss.Accesses()
			}
			b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
		})
	}
}

// BenchmarkIngestSerial is the serial baseline for the pipeline: one
// goroutine decodes the same .din bytes, materializes the block
// stream, then partitions it with the two-pass ShardBlockStream walk.
func BenchmarkIngestSerial(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			text := benchDinText(b, app)
			var accesses uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bs, err := trace.MaterializeBlockStream(trace.NewDinReader(bytes.NewReader(text)), benchAccessOpt.BlockSize)
				if err != nil {
					b.Fatal(err)
				}
				ss, err := trace.ShardBlockStream(bs, benchIngestLog)
				if err != nil {
					b.Fatal(err)
				}
				accesses = ss.Accesses()
			}
			b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
		})
	}
}

// BenchmarkAccessStreamLRU is BenchmarkAccessStream under the LRU
// replacement policy: the same workloads, pass shape and shared
// materialized stream, but every warm miss pays the LRU victim
// selection instead of the FIFO cursor bump. It tracks the cost of the
// policy generalization (the paper's Section 2.1 caveat) the same way
// the FIFO benchmarks track the main path — and guarded the O(A)
// victim-scan fix (per-node recency links replacing the min-stamp
// scan).
func BenchmarkAccessStreamLRU(b *testing.B) {
	opt := benchAccessOpt
	opt.Policy = cache.LRU
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			tr := benchTrace(b, app)
			bs, err := tr.BlockStream(opt.BlockSize)
			if err != nil {
				b.Fatal(err)
			}
			sim := core.MustNew(opt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Reset()
				if err := sim.SimulateStream(bs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr)), "ns/access")
		})
	}
}

// benchWriteSim builds the write-policy reference simulator the
// write-replay benchmarks share: one representative configuration under
// write-through / no-write-allocate — the combination whose
// leading-store bypasses exercise every run shape of the kind-aware
// fold (write-back/write-allocate degenerates to the kind-free fold
// plus a dirty bit).
func benchWriteSim(b *testing.B) *refsim.Simulator {
	b.Helper()
	sim, err := refsim.NewSim(refsim.Options{
		Config:      cache.Config{Sets: 256, Assoc: benchAccessOpt.Assoc, BlockSize: benchAccessOpt.BlockSize},
		Replacement: cache.FIFO,
		Write:       refsim.WriteThrough,
		Alloc:       refsim.NoWriteAllocate,
		StoreBytes:  4,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

// BenchmarkRefAccessWrite measures the write-policy reference simulator
// on the per-access path: one interface-dispatched Reader.Next call
// plus one Access call per request — the only way refsim could replay
// the write/alloc axes before the kind-preserving stream. It is the
// baseline for BenchmarkRefStreamWrite; scripts/bench.sh records the
// pair's ratio as speedup_refwrite_stream_over_access in
// BENCH_core.json.
func BenchmarkRefAccessWrite(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			tr := benchTrace(b, app)
			sim := benchWriteSim(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Reset()
				if _, err := sim.Simulate(tr.NewSliceReader()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr)), "ns/access")
		})
	}
}

// BenchmarkRefStreamWrite measures the same write-policy replay over
// the kind-preserving run stream: each repeated-block run folds exactly
// under the write/alloc policy from its KindRun record instead of being
// expanded per access. The stream is materialized once outside the
// timed region — how sweep.RunWriteCell amortizes it across a design
// space — and the kindB/access metric reports the kind channel's
// memory cost per trace access (the price of keeping the write-policy
// axes on the stream path), which bench.sh records per workload
// alongside the stream-over-access speedup.
func BenchmarkRefStreamWrite(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			tr := benchTrace(b, app)
			bs, err := tr.BlockStreamWithKinds(benchAccessOpt.BlockSize)
			if err != nil {
				b.Fatal(err)
			}
			sim := benchWriteSim(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Reset()
				if _, err := sim.SimulateStream(bs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tr)), "ns/access")
			b.ReportMetric(bs.CompressionRatio(), "addr/run")
			kindBytes := float64(len(bs.Kinds)) * float64(unsafe.Sizeof(trace.KindRun{}))
			b.ReportMetric(kindBytes/float64(bs.Accesses), "kindB/access")
		})
	}
}

// BenchmarkBatchedReaders measures trace delivery alone (simulation
// excluded): the per-access Next loop against the ReadBatch loop, for
// the in-memory reader and the workload generator stream.
func BenchmarkBatchedReaders(b *testing.B) {
	tr := benchTrace(b, workload.CJPEG)
	b.Run("slice/next", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var r trace.Reader = tr.NewSliceReader()
			for {
				if _, err := r.Next(); err != nil {
					break
				}
			}
		}
	})
	b.Run("slice/batch", func(b *testing.B) {
		buf := make([]trace.Access, trace.DefaultBatchSize)
		for i := 0; i < b.N; i++ {
			var r trace.BatchReader = tr.NewSliceReader()
			for {
				if _, err := r.ReadBatch(buf); err != nil {
					break
				}
			}
		}
	})
	b.Run("stream/next", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := workload.Stream(workload.CJPEG.Generator(1), benchRequests)
			for {
				if _, err := r.Next(); err != nil {
					break
				}
			}
		}
	})
	b.Run("stream/batch", func(b *testing.B) {
		buf := make([]trace.Access, trace.DefaultBatchSize)
		for i := 0; i < b.N; i++ {
			r := trace.Batch(workload.Stream(workload.CJPEG.Generator(1), benchRequests))
			for {
				if _, err := r.ReadBatch(buf); err != nil {
					break
				}
			}
		}
	})
}

// BenchmarkSweepCellWorkers measures one full comparison cell (DEW fast
// pass + instrumented pass + all reference passes) serial vs parallel.
func BenchmarkSweepCellWorkers(b *testing.B) {
	tr := benchTrace(b, workload.MPEG2Dec)
	p := sweep.Params{App: workload.MPEG2Dec, BlockSize: 16, Assoc: 4, MaxLogSets: benchMaxLog}
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		b.Run(name, func(b *testing.B) {
			r := sweep.Runner{Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := r.RunCellTrace(context.Background(), p, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Reference measures the baseline side of Table 3: one
// reference pass per configuration (the Dinero IV methodology) for a
// representative subset of cells.
func BenchmarkTable3Reference(b *testing.B) {
	for _, app := range []workload.App{workload.CJPEG, workload.MPEG2Dec} {
		for _, block := range []int{4, 64} {
			for _, assoc := range []int{4, 8} {
				name := fmt.Sprintf("%s/B%d/A%d", app.Name, block, assoc)
				b.Run(name, func(b *testing.B) {
					tr := benchTrace(b, app)
					b.ResetTimer()
					var cmps uint64
					for i := 0; i < b.N; i++ {
						cmps = 0
						for log := 0; log <= benchMaxLog; log++ {
							for _, a := range []int{1, assoc} {
								cfg := cache.Config{Sets: 1 << log, Assoc: a, BlockSize: block}
								stats, err := refsim.RunTrace(cfg, cache.FIFO, tr)
								if err != nil {
									b.Fatal(err)
								}
								cmps += stats.TagComparisons
							}
						}
					}
					b.ReportMetric(float64(cmps)/float64(len(tr)), "cmp/access")
				})
			}
		}
	}
}

// BenchmarkTable4Properties reports the Table 4 property counters per
// access for every app at block size 4 (associativity 4 and 8).
func BenchmarkTable4Properties(b *testing.B) {
	for _, app := range workload.Apps() {
		for _, assoc := range []int{4, 8} {
			name := fmt.Sprintf("%s/A%d", app.Name, assoc)
			b.Run(name, func(b *testing.B) {
				tr := benchTrace(b, app)
				opt := core.Options{MaxLogSets: benchMaxLog, Assoc: assoc, BlockSize: 4}
				var c core.Counters
				var unopt uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sim := core.MustNew(opt)
					if err := sim.Simulate(tr.NewSliceReader()); err != nil {
						b.Fatal(err)
					}
					c = sim.Counters()
					unopt = sim.UnoptimizedEvaluations()
				}
				n := float64(len(tr))
				b.ReportMetric(float64(c.NodeEvaluations)/n, "eval/access")
				b.ReportMetric(float64(unopt)/n, "unoptEval/access")
				b.ReportMetric(float64(c.MRACount)/n, "mra/access")
				b.ReportMetric(float64(c.Searches)/n, "search/access")
				b.ReportMetric(float64(c.WaveCount)/n, "wave/access")
				b.ReportMetric(float64(c.MRECount)/n, "mre/access")
			})
		}
	}
}

// BenchmarkFigure5Speedup reproduces Figure 5's metric: the measured
// wall-time ratio between the per-configuration baseline and one DEW
// pass, reported as "speedup".
func BenchmarkFigure5Speedup(b *testing.B) {
	for _, app := range []workload.App{workload.DJPEG, workload.MPEG2Dec} {
		for _, block := range []int{4, 16, 64} {
			name := fmt.Sprintf("%s/B%d", app.Name, block)
			b.Run(name, func(b *testing.B) {
				tr := benchTrace(b, app)
				p := sweep.Params{App: app, BlockSize: block, Assoc: 4, MaxLogSets: benchMaxLog}
				var speedup float64
				for i := 0; i < b.N; i++ {
					cell, err := (sweep.Runner{}).RunCellTrace(context.Background(), p, tr)
					if err != nil {
						b.Fatal(err)
					}
					speedup = cell.Speedup()
				}
				b.ReportMetric(speedup, "speedup")
			})
		}
	}
}

// BenchmarkFigure6ComparisonReduction reproduces Figure 6's metric: the
// percentage reduction of tag comparisons, reported as "reduction%".
func BenchmarkFigure6ComparisonReduction(b *testing.B) {
	for _, app := range []workload.App{workload.DJPEG, workload.MPEG2Dec} {
		for _, block := range []int{4, 16, 64} {
			name := fmt.Sprintf("%s/B%d", app.Name, block)
			b.Run(name, func(b *testing.B) {
				tr := benchTrace(b, app)
				p := sweep.Params{App: app, BlockSize: block, Assoc: 4, MaxLogSets: benchMaxLog}
				var red float64
				for i := 0; i < b.N; i++ {
					cell, err := (sweep.Runner{}).RunCellTrace(context.Background(), p, tr)
					if err != nil {
						b.Fatal(err)
					}
					red = cell.ComparisonReduction()
				}
				b.ReportMetric(red, "reduction%")
			})
		}
	}
}

// BenchmarkAblation quantifies each DEW property's contribution by
// disabling them one at a time (and all together). Compare ns/op and
// cmp/access across sub-benchmarks.
func BenchmarkAblation(b *testing.B) {
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"full", core.Options{}},
		{"noMRA", core.Options{DisableMRA: true}},
		{"noWave", core.Options{DisableWave: true}},
		{"noMRE", core.Options{DisableMRE: true}},
		{"none", core.Options{DisableMRA: true, DisableWave: true, DisableMRE: true}},
	}
	tr := workload.Take(workload.CJPEG.Generator(1), benchRequests)
	for _, v := range variants {
		opt := v.opt
		opt.MaxLogSets = benchMaxLog
		opt.Assoc = 4
		opt.BlockSize = 16
		b.Run(v.name, func(b *testing.B) {
			var cmps uint64
			for i := 0; i < b.N; i++ {
				sim := core.MustNew(opt)
				if err := sim.Simulate(tr.NewSliceReader()); err != nil {
					b.Fatal(err)
				}
				cmps = sim.Counters().TagComparisons
			}
			b.ReportMetric(float64(cmps)/float64(len(tr)), "cmp/access")
		})
	}
}

// BenchmarkLRUTreeVsDEW contrasts the two single-pass simulators (FIFO
// vs LRU policies) on the same trace — the related-work baseline.
func BenchmarkLRUTreeVsDEW(b *testing.B) {
	tr := workload.Take(workload.G721Enc.Generator(1), benchRequests)
	b.Run("DEW-FIFO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim := core.MustNew(core.Options{MaxLogSets: benchMaxLog, Assoc: 4, BlockSize: 16})
			if err := sim.Simulate(tr.NewSliceReader()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Tree-LRU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim, err := lrutree.New(lrutree.Options{MaxLogSets: benchMaxLog, Assoc: 4, BlockSize: 16})
			if err != nil {
				b.Fatal(err)
			}
			if err := sim.Simulate(tr.NewSliceReader()); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The paper's Section 2.1 limitation: DEW can simulate LRU but is
	// expected to be slower than the LRU-specialized tree simulator.
	b.Run("DEW-LRU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim := core.MustNew(core.Options{MaxLogSets: benchMaxLog, Assoc: 4, BlockSize: 16, Policy: cache.LRU})
			if err := sim.Simulate(tr.NewSliceReader()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestPaperScaleOptions confirms the paper's full parameterization
// (15 levels up to 16384 sets, associativity up to 16, block sizes to 64)
// is accepted and runs end to end on a short trace.
func TestPaperScaleOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale allocation test skipped in -short mode")
	}
	tr := workload.Take(workload.CJPEG.Generator(1), 10_000)
	for _, block := range []int{1, 64} {
		sim, err := core.Run(core.Options{MaxLogSets: 14, Assoc: 16, BlockSize: block}, tr.NewSliceReader())
		if err != nil {
			t.Fatal(err)
		}
		if got := len(sim.Results()); got != 30 {
			t.Errorf("B=%d: results = %d, want 30", block, got)
		}
	}
}

// benchStreams memoizes the finest-rung (16-byte block) kind-free
// stream of each benchmark workload, mirroring benchTraces.
var benchStreams = map[string]*trace.BlockStream{}

func benchStream(b *testing.B, app workload.App) *trace.BlockStream {
	b.Helper()
	bs, ok := benchStreams[app.Name]
	if !ok {
		var err error
		bs, err = trace.MaterializeBlockStream(benchTrace(b, app).NewSliceReader(), 16)
		if err != nil {
			b.Fatal(err)
		}
		benchStreams[app.Name] = bs
	}
	return bs
}

// BenchmarkStreamMarshal measures encoding the finest-rung block stream
// into its DBS1 artifact form — the store's publish cost on a cold run.
func BenchmarkStreamMarshal(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			bs := benchStream(b, app)
			b.ReportAllocs()
			var blob []byte
			for i := 0; i < b.N; i++ {
				var err error
				blob, err = bs.MarshalBinary()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(blob)))
		})
	}
}

// BenchmarkStreamLoad measures decoding a DBS1 artifact back into a
// block stream — the store's warm-hit cost. The blocks/s metric is the
// cache-load throughput recorded as cache_load_blocks_per_s in
// BENCH_core.json.
func BenchmarkStreamLoad(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			bs := benchStream(b, app)
			blob, err := bs.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(blob)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var got trace.BlockStream
				if _, err := got.ReadFrom(bytes.NewReader(blob)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(bs.Len())*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
		})
	}
}

// benchExploreReq builds the exploration both cache benchmarks share: a
// narrow one-block-size space over a .din-text rendering of the trace,
// the format real trace files arrive in, so the cold run pays the parse
// the warm run skips. The request arrives cache-free (cold form).
func benchExploreReq(b *testing.B, app workload.App) explore.Request {
	b.Helper()
	tr := benchTrace(b, app)
	var buf bytes.Buffer
	w := trace.NewDinWriter(&buf)
	for _, a := range tr {
		if err := w.WriteAccess(a); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	din := buf.Bytes()
	return explore.Request{
		Space: cache.ParamSpace{
			MinLogSets: 0, MaxLogSets: 6,
			MinLogBlock: 4, MaxLogBlock: 4,
			MinLogAssoc: 1, MaxLogAssoc: 1,
		},
		Source:  func() trace.Reader { return trace.NewDinReader(bytes.NewReader(din)) },
		Workers: 1,
	}
}

// BenchmarkExploreCold measures an exploration that decodes the raw
// trace every run (no artifact store).
func BenchmarkExploreCold(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			req := benchExploreReq(b, app)
			nAccesses := len(benchTrace(b, app))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := explore.Run(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				if res.Decodes != 1 {
					b.Fatalf("cold run decoded %d times, want 1", res.Decodes)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nAccesses), "ns/access")
		})
	}
}

// BenchmarkExploreWarm measures the same exploration served from a
// pre-populated artifact store: zero trace decodes, results
// bit-identical to the cold run. The ns/access ratio against
// BenchmarkExploreCold is recorded as speedup_warm_over_cold in
// BENCH_core.json.
func BenchmarkExploreWarm(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			req := benchExploreReq(b, app)
			req.Cache = st
			req.SourceID = store.TraceID(benchTrace(b, app))
			if _, err := explore.Run(context.Background(), req); err != nil {
				b.Fatal(err) // untimed populating run
			}
			nAccesses := len(benchTrace(b, app))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := explore.Run(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				if !res.CacheHit || res.Decodes != 0 {
					b.Fatalf("warm run missed the cache (hit=%v decodes=%d)", res.CacheHit, res.Decodes)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nAccesses), "ns/access")
		})
	}
}

// benchSweepParams is the small cell grid both sweep cache benchmarks
// share: two associativity pairs at one block size, full reference
// cross-check per cell as always.
func benchSweepParams(app workload.App) []sweep.Params {
	var params []sweep.Params
	for _, assoc := range []int{2, 4} {
		params = append(params, sweep.Params{
			App: app, Seed: 1, Requests: benchRequests,
			BlockSize: 16, Assoc: assoc, MaxLogSets: 8,
		})
	}
	return params
}

// BenchmarkSweepCold measures the full sweep with no artifact store:
// every cell materializes its stream and runs the DEW pass plus both
// reference passes.
func BenchmarkSweepCold(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			params := benchSweepParams(app)
			nAccesses := benchRequests * len(params)
			r := sweep.Runner{Workers: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cells, err := r.RunCells(context.Background(), params)
				if err != nil {
					b.Fatal(err)
				}
				if len(cells) != len(params) {
					b.Fatalf("%d cells, want %d", len(cells), len(params))
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nAccesses), "ns/access")
		})
	}
}

// BenchmarkSweepWarm measures the same sweep served entirely from the
// result tier of a pre-populated artifact store: zero simulations,
// zero trace decodes (the sampled live re-check is disabled so the
// benchmark times the pure warm path). The ns/access ratio against
// BenchmarkSweepCold is recorded as speedup_sweep_warm_over_cold in
// BENCH_core.json, and the cells/s metric as
// result_cache_hit_cells_per_s.
func BenchmarkSweepWarm(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			st, err := store.Open(b.TempDir(), store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			params := benchSweepParams(app)
			r := sweep.Runner{Workers: 1, Cache: st, NoWarmCheck: true}
			if _, err := r.RunCells(context.Background(), params); err != nil {
				b.Fatal(err) // untimed populating run
			}
			nAccesses := benchRequests * len(params)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cells, err := r.RunCells(context.Background(), params)
				if err != nil {
					b.Fatal(err)
				}
				if sim, cached, _ := sweep.Provenance(cells); sim != 0 || cached != len(params) {
					b.Fatalf("warm sweep simulated %d cells (%d cached), want all %d cached", sim, cached, len(params))
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nAccesses), "ns/access")
			b.ReportMetric(float64(len(params))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkReplayMaterialized measures the phased replay baseline the
// streaming pipeline competes with: decode the whole trace into a
// materialized run-compressed stream, then replay it through the dew
// engine — two serial phases with the full stream resident in between.
// Compare BenchmarkReplayStreamed over the same workload, spec and
// engine; scripts/bench.sh records the pair's ns/access ratio as
// speedup_streamed_over_phased and the pipeline's enforced residency
// as peak_resident_bytes in BENCH_core.json.
func BenchmarkReplayMaterialized(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			spec := engine.Spec{
				MaxLogSets: benchMaxLog, Assoc: benchAccessOpt.Assoc,
				BlockSize: benchAccessOpt.BlockSize, Policy: cache.FIFO,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bs, err := trace.MaterializeBlockStream(
					workload.Stream(app.Generator(1), benchRequests), spec.BlockSize)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := engine.New("dew", spec)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.SimulateStream(bs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchRequests), "ns/access")
		})
	}
}

// BenchmarkReplayStreamed measures the same end-to-end replay through
// the bounded span pipeline: decode and simulation overlap, and the
// resident stream state never exceeds the budget (reported as peakB —
// the enforced bound, where the materialized baseline holds the whole
// stream). The statistics accumulated by the engine are bit-identical
// to the baseline's; only the schedule differs.
func BenchmarkReplayStreamed(b *testing.B) {
	for _, app := range benchAccessApps {
		b.Run(app.Name, func(b *testing.B) {
			spec := engine.Spec{
				MaxLogSets: benchMaxLog, Assoc: benchAccessOpt.Assoc,
				BlockSize: benchAccessOpt.BlockSize, Policy: cache.FIFO,
			}
			var peak int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pl, err := trace.StreamSpans(context.Background(),
					workload.Stream(app.Generator(1), benchRequests), spec.BlockSize,
					trace.SpanOptions{MemBytes: 4 << 20})
				if err != nil {
					b.Fatal(err)
				}
				eng, err := engine.New("dew", spec)
				if err != nil {
					pl.Close()
					b.Fatal(err)
				}
				for s := range pl.Spans() {
					if err := eng.SimulateStream(&s.BlockStream); err != nil {
						pl.Close()
						b.Fatal(err)
					}
				}
				if err := pl.Err(); err != nil {
					b.Fatal(err)
				}
				peak = pl.ResidentBound()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(benchRequests), "ns/access")
			b.ReportMetric(float64(peak), "peakB")
		})
	}
}
