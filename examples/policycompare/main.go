// Policycompare contrasts FIFO and LRU level-1 caches on the same traces,
// echoing the paper's motivation (Al-Zoubi et al., reference [4]: for L1
// caches FIFO and LRU each have their advantages, and FIFO is cheaper in
// hardware) and demonstrating the property that defines the whole paper:
// FIFO caches are not inclusive across set counts, LRU caches are.
//
// It uses both single-pass multi-configuration simulators side by side:
// the DEW core for FIFO and the Janapsatya/CRCB-style tree for LRU. The
// trace is materialized into one run-compressed block stream per app and
// the *same* stream is replayed by both simulators — the stream frontend
// shares the decode-and-shift work across the whole design space, and
// both fast paths fold run weights exactly (DEW's Property 2, the tree's
// same-block pruning).
//
// Run with:
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"log"

	"dew/internal/cache"
	"dew/internal/core"
	"dew/internal/lrutree"
	"dew/internal/refsim"
	"dew/internal/workload"
)

func main() {
	const (
		requests = 300_000
		seed     = 11
		block    = 32
		assoc    = 4
		maxLog   = 10
	)

	fmt.Printf("FIFO vs LRU miss rates (%d-way, %dB blocks, %d requests):\n\n", assoc, block, requests)
	for _, app := range workload.Apps() {
		tr := workload.Take(app.Generator(seed), requests)

		// One materialization, shared by both simulators.
		stream, err := tr.BlockStream(block)
		if err != nil {
			log.Fatal(err)
		}

		fifo := core.MustNew(core.Options{MaxLogSets: maxLog, Assoc: assoc, BlockSize: block})
		if err := fifo.SimulateStream(stream); err != nil {
			log.Fatal(err)
		}
		lru, err := lrutree.New(lrutree.Options{MaxLogSets: maxLog, Assoc: assoc, BlockSize: block})
		if err != nil {
			log.Fatal(err)
		}
		if err := lru.SimulateStream(stream); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s (stream %.1fx run-compressed):\n", app.Name, stream.CompressionRatio())
		fmt.Printf("  %8s %12s %12s %8s\n", "sets", "FIFO misses", "LRU misses", "winner")
		for _, sets := range []int{16, 64, 256, 1024} {
			f, err := fifo.MissesFor(sets, assoc)
			if err != nil {
				log.Fatal(err)
			}
			var l uint64
			for _, res := range lru.Results() {
				if res.Config.Sets == sets && res.Config.Assoc == assoc {
					l = res.Misses
				}
			}
			winner := "LRU"
			switch {
			case f < l:
				winner = "FIFO"
			case f == l:
				winner = "tie"
			}
			fmt.Printf("  %8d %12d %12d %8s\n", sets, f, l, winner)
		}
	}

	// Demonstrate the structural difference that motivates DEW: find an
	// access that hits a small FIFO cache but misses a larger one.
	fmt.Println("\nFIFO non-inclusion demonstration (the reason LRU-style")
	fmt.Println("single-pass pruning cannot be used for FIFO):")
	small := cache.Config{Sets: 1, Assoc: 2, BlockSize: 1}
	big := cache.Config{Sets: 2, Assoc: 2, BlockSize: 1}
	for s := uint64(0); s < 50; s++ {
		// High-contention stream: uniform lookups into 8 hot entries.
		gen := workload.NewTableLookup(s, 0, 8, 1, 1, 1, 0)
		tr := workload.Take(gen, 5_000)
		s1, err := refsim.New(small, cache.FIFO)
		if err != nil {
			log.Fatal(err)
		}
		s2, err := refsim.New(big, cache.FIFO)
		if err != nil {
			log.Fatal(err)
		}
		for i, a := range tr {
			h1 := s1.Access(a)
			h2 := s2.Access(a)
			if h1 && !h2 {
				fmt.Printf("  seed %d, access #%d (addr %#x): HIT in %v but MISS in %v\n",
					s, i, a.Addr, small, big)
				return
			}
		}
	}
	fmt.Println("  (no violation found; unexpected for FIFO)")
}
