// Designspace explores the paper's full 525-configuration space (Table 1)
// for an embedded workload and ranks the configurations with a parametric
// energy model — the cache-customization use case the paper's
// introduction motivates (choosing an L1 for an Xtensa-class core).
//
// One DEW pass per (associativity, block size) pair covers all 15 set
// counts; 28 passes plus the free direct-mapped results yield all 525
// configurations from 28 trace reads instead of 525.
//
// Run with:
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"dew/internal/cache"
	"dew/internal/core"
	"dew/internal/energy"
	"dew/internal/workload"
)

func main() {
	const (
		requests = 300_000
		seed     = 7
	)
	app := workload.G721Enc
	space := cache.PaperSpace()

	results := make(map[cache.Config]cache.Stats)
	passes := 0
	for _, block := range space.BlockSizes() {
		for _, assoc := range space.Assocs() {
			if assoc == 1 {
				continue // direct-mapped comes free with every pass
			}
			sim, err := core.Run(core.Options{
				MinLogSets: space.MinLogSets, MaxLogSets: space.MaxLogSets,
				Assoc: assoc, BlockSize: block,
			}, workload.Stream(app.Generator(seed), requests))
			if err != nil {
				log.Fatal(err)
			}
			passes++
			for _, res := range sim.Results() {
				results[res.Config] = res.Stats
			}
		}
	}

	if len(results) != space.Count() {
		log.Fatalf("expected %d configurations, got %d", space.Count(), len(results))
	}
	fmt.Printf("explored %d configurations of %s with %d DEW passes (%d requests each)\n\n",
		len(results), app.Name, passes, requests)

	model := energy.DefaultModel()
	ranked := model.Rank(results)

	fmt.Println("ten cheapest configurations by modeled energy:")
	for i, s := range ranked[:10] {
		fmt.Printf("%2d. %s\n", i+1, s)
	}

	fmt.Println("\nand the three most expensive (oversized or thrashing):")
	for i := len(ranked) - 3; i < len(ranked); i++ {
		fmt.Printf("    %s\n", ranked[i])
	}

	best := ranked[0]
	fmt.Printf("\nrecommended L1: %v (miss rate %.3f%%)\n",
		best.Config, 100*best.Stats.MissRate())
}
