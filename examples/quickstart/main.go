// Quickstart: simulate every power-of-two set count for a 4-way,
// 32-byte-block FIFO cache in a single pass over a synthetic JPEG-encoder
// trace, and print the resulting miss rates.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dew/internal/cache"
	"dew/internal/core"
	"dew/internal/workload"
)

func main() {
	// A deterministic 500k-request trace modeled on Mediabench CJPEG.
	const requests = 500_000
	reader := workload.Stream(workload.CJPEG.Generator(42), requests)

	// One DEW pass covers set counts 2^0..2^10 at associativity 4 —
	// and, for free, the direct-mapped configurations too.
	sim, err := core.Run(core.Options{
		MinLogSets: 0, MaxLogSets: 10,
		Assoc: 4, BlockSize: 32,
	}, reader)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CJPEG model, FIFO replacement, block 32B:")
	fmt.Printf("%-22s %10s %10s\n", "configuration", "misses", "miss rate")
	for _, res := range sim.Results() {
		if res.Config.Assoc == 1 {
			continue // direct-mapped results available too; keep it short
		}
		fmt.Printf("%-22s %10d %9.2f%%\n",
			res.Config.String(), res.Misses, 100*res.MissRate())
	}

	c := sim.Counters()
	fmt.Printf("\nsingle pass over %d requests: %d tag comparisons\n", c.Accesses, c.TagComparisons)
	fmt.Printf("a per-configuration simulator would have re-read the trace %d times\n",
		len(sim.Results()))

	// Individual configurations are addressable directly.
	misses, err := sim.MissesFor(256, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexample lookup: %v -> %d misses\n", cache.Config{Sets: 256, Assoc: 4, BlockSize: 32}, misses)
}
