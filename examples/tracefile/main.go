// Tracefile demonstrates trace-file interoperability: it writes a
// Dinero-format (.din) trace and a compressed delta-encoded binary
// (.dtb.gz) trace, reads both back, and shows that DEW and the reference
// simulator agree exactly on the decoded streams — the paper's
// SimpleScalar-to-simulator pipeline, reproduced end to end.
//
// Run with:
//
//	go run ./examples/tracefile
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dew/internal/cache"
	"dew/internal/core"
	"dew/internal/refsim"
	"dew/internal/trace"
	"dew/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "dew-tracefile")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const requests = 200_000
	app := workload.MPEG2Dec

	// Write the same trace in both formats.
	paths := []string{
		filepath.Join(dir, "mpeg2dec.din"),
		filepath.Join(dir, "mpeg2dec.dtb.gz"),
	}
	for _, path := range paths {
		w, closer, err := trace.CreateFile(path)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := trace.Copy(w, workload.Stream(app.Generator(3), requests)); err != nil {
			log.Fatal(err)
		}
		if err := closer.Close(); err != nil {
			log.Fatal(err)
		}
		info, _ := os.Stat(path)
		fmt.Printf("wrote %-16s %8.2f KiB (%.2f bytes/access)\n",
			filepath.Base(path), float64(info.Size())/1024, float64(info.Size())/requests)
	}

	// Read each back and simulate; results must be identical across
	// formats and across simulators.
	opt := core.Options{MinLogSets: 0, MaxLogSets: 8, Assoc: 4, BlockSize: 16}
	var first []core.Result
	for _, path := range paths {
		r, closer, err := trace.OpenFile(path)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := core.Run(opt, r)
		closer.Close()
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Results()
		if first == nil {
			first = res
		} else {
			for i := range res {
				if res[i] != first[i] {
					log.Fatalf("format mismatch at %v", res[i].Config)
				}
			}
			fmt.Println("\nboth formats decode to identical simulation results")
		}
	}

	// Cross-check a few configurations against the reference simulator.
	fmt.Println("\ncross-check vs the single-configuration reference simulator:")
	r, closer, err := trace.OpenFile(paths[0])
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.ReadAll(r)
	closer.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, cfg := range []cache.Config{
		{Sets: 16, Assoc: 4, BlockSize: 16},
		{Sets: 64, Assoc: 1, BlockSize: 16},
		{Sets: 256, Assoc: 4, BlockSize: 16},
	} {
		stats, err := refsim.RunTrace(cfg, cache.FIFO, tr)
		if err != nil {
			log.Fatal(err)
		}
		var dewMisses uint64
		for _, res := range first {
			if res.Config == cfg {
				dewMisses = res.Misses
			}
		}
		status := "OK"
		if dewMisses != stats.Misses {
			status = "MISMATCH"
		}
		fmt.Printf("  %-22s DEW %8d misses, reference %8d  %s\n",
			cfg.String(), dewMisses, stats.Misses, status)
	}
}
