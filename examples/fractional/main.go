// Fractional contrasts exact single-pass simulation with the two
// approximation techniques the paper's related-work section discusses:
// fractional (sampled) simulation, which trades accuracy for time, and
// trace preprocessing (CRCB-style same-block collapsing), which shrinks
// the trace without losing exactness for sufficiently large blocks. It
// also shows the split instruction/data L1 pair an embedded core
// actually has, simulated from one unified trace.
//
// Run with:
//
//	go run ./examples/fractional
package main

import (
	"fmt"
	"log"
	"time"

	"dew/internal/core"
	"dew/internal/trace"
	"dew/internal/workload"
)

func main() {
	const (
		requests = 600_000
		seed     = 5
		maxLog   = 10
		assoc    = 4
		block    = 32
	)
	app := workload.MPEG2Enc
	tr := workload.Take(app.Generator(seed), requests)
	opt := core.Options{MaxLogSets: maxLog, Assoc: assoc, BlockSize: block}

	run := func(r trace.Reader) (*core.Simulator, time.Duration) {
		start := time.Now()
		sim, err := core.Run(opt, r)
		if err != nil {
			log.Fatal(err)
		}
		return sim, time.Since(start)
	}

	// Exact baseline.
	exact, exactTime := run(tr.NewSliceReader())

	// Fractional simulation: first 10k of every 100k accesses, scaled.
	sampled, err := trace.WindowSample(tr.NewSliceReader(), 10_000, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	frac, fracTime := run(sampled)

	// CRCB-style preprocessing: collapse consecutive same-block runs.
	// Dropped accesses are hits in every configuration with at least
	// this block size, so adding them back preserves exact totals.
	dedup, err := trace.NewDedup(tr.NewSliceReader(), block)
	if err != nil {
		log.Fatal(err)
	}
	pre, preTime := run(dedup)

	fmt.Printf("%s, %d requests, %d-way, %dB blocks\n\n", app.Name, requests, assoc, block)
	fmt.Printf("%-10s %12s %12s %12s %10s\n", "sets", "exact", "fractional", "dedup", "frac err")
	for _, sets := range []int{16, 64, 256, 1024} {
		e, _ := exact.MissesFor(sets, assoc)
		f, _ := frac.MissesFor(sets, assoc)
		d, _ := pre.MissesFor(sets, assoc)
		scaled := f * 10 // 10% sample scaled back up
		errPct := 100 * (float64(scaled) - float64(e)) / float64(e)
		fmt.Printf("%-10d %12d %12d %12d %9.1f%%\n", sets, e, scaled, d, errPct)
	}

	fmt.Printf("\nexact pass:      %8v\n", exactTime.Round(time.Microsecond))
	fmt.Printf("fractional pass: %8v (10%% of the trace; estimates, not exact)\n", fracTime.Round(time.Microsecond))
	fmt.Printf("dedup pass:      %8v (%d of %d accesses survived; dropped ones are\n",
		preTime.Round(time.Microsecond), requests-int(dedup.Dropped), requests)
	fmt.Println("                 guaranteed hits at this block size, so misses stay exact)")

	mismatch := false
	for _, sets := range []int{16, 64, 256, 1024} {
		e, _ := exact.MissesFor(sets, assoc)
		d, _ := pre.MissesFor(sets, assoc)
		if e != d {
			mismatch = true
		}
	}
	if mismatch {
		fmt.Println("\nWARNING: dedup changed miss counts — should not happen")
	} else {
		fmt.Println("\ndedup miss counts verified identical to the exact pass")
	}

	// Split I/D simulation: the embedded L1 pair from one unified trace.
	fmt.Println("\nsplit L1 pair from the same trace (DEW pass each):")
	iSim, _ := run(trace.OnlyInstructions(tr.NewSliceReader()))
	dSim, _ := run(trace.OnlyData(tr.NewSliceReader()))
	for _, sets := range []int{64, 256} {
		im, _ := iSim.MissesFor(sets, assoc)
		dm, _ := dSim.MissesFor(sets, assoc)
		iAcc := iSim.Counters().Accesses
		dAcc := dSim.Counters().Accesses
		fmt.Printf("  %4d sets: I-cache %.3f%% misses (%d reqs), D-cache %.3f%% misses (%d reqs)\n",
			sets, 100*float64(im)/float64(iAcc), iAcc, 100*float64(dm)/float64(dAcc), dAcc)
	}
}
